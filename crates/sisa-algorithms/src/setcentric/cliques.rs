//! Set-centric clique mining: triangle counting, k-clique counting/listing,
//! 4-clique counting and k-clique-star listing (paper §5.1.1–§5.1.4).
//!
//! All clique algorithms operate on a graph oriented by a degeneracy ordering
//! (edges point from earlier to later vertices), which makes the search space
//! acyclic and bounds out-degrees by the degeneracy `c` (§7.1). Use
//! [`orient_by_degeneracy`] to prepare that oriented [`SetGraph`].

use crate::limits::SearchLimits;
use crate::{MiningRun, Vertex};
use sisa_core::{SetEngine, SetGraph, SetGraphConfig};
use sisa_graph::orientation::degeneracy_order;
use sisa_graph::CsrGraph;
use std::collections::HashMap;

/// Orients `g` by its (exact) degeneracy ordering and loads the result as a
/// SISA [`SetGraph`]. This is the preprocessing step shared by all clique
/// algorithms ("Edge goes from v to u iff η(v) < η(u)", Algorithm 3).
#[must_use]
pub fn orient_by_degeneracy<E: SetEngine>(
    rt: &mut E,
    g: &CsrGraph,
    cfg: &SetGraphConfig,
) -> (SetGraph, sisa_graph::orientation::DegeneracyOrdering) {
    let ordering = degeneracy_order(g);
    let oriented = ordering.orient(g);
    (SetGraph::load(rt, &oriented, cfg), ordering)
}

/// Set-centric triangle counting (Algorithm 1, node-iterator form on the
/// oriented graph): `tc = Σ_v Σ_{w ∈ N⁺(v)} |N⁺(v) ∩ N⁺(w)|`.
///
/// `oriented` must be a degeneracy-oriented [`SetGraph`]; each triangle is
/// then counted exactly once and no final division is needed.
pub fn triangle_count<E: SetEngine>(
    rt: &mut E,
    oriented: &SetGraph,
    limits: &SearchLimits,
) -> MiningRun<u64> {
    let mut budget = limits.budget();
    let mut tasks = Vec::with_capacity(oriented.num_vertices());
    let mut tc: u64 = 0;
    'outer: for v in 0..oriented.num_vertices() as Vertex {
        rt.task_begin();
        let nv = oriented.neighborhood(v);
        for &w in oriented.neighbors(v) {
            rt.host_ops(2);
            let found = rt.intersect_count(nv, oriented.neighborhood(w)) as u64;
            tc += found;
            if found > 0 && !budget.found(found) {
                tasks.push(rt.task_end());
                break 'outer;
            }
        }
        tasks.push(rt.task_end());
    }
    MiningRun::new(tc, tasks, budget.exhausted())
}

/// Set-centric k-clique counting (Algorithm 3, Danisch et al. reformulated
/// with explicit set operations).
pub fn k_clique_count<E: SetEngine>(
    rt: &mut E,
    oriented: &SetGraph,
    k: usize,
    limits: &SearchLimits,
) -> MiningRun<u64> {
    assert!(k >= 2, "k-cliques need k >= 2");
    let mut budget = limits.budget();
    let mut tasks = Vec::with_capacity(oriented.num_vertices());
    let mut total: u64 = 0;
    for u in 0..oriented.num_vertices() as Vertex {
        if budget.exhausted() {
            break;
        }
        rt.task_begin();
        // C2 = N⁺(u); count (k-2) further extensions.
        let c2 = oriented.neighborhood(u);
        total += count_extensions(rt, oriented, c2, 2, k, &mut budget, None);
        tasks.push(rt.task_end());
    }
    MiningRun::new(total, tasks, budget.exhausted())
}

/// Recursive helper shared by counting and listing: extends the candidate set
/// `ci` (all vertices completing the current (i)-clique) until level `k`.
fn count_extensions<E: SetEngine>(
    rt: &mut E,
    oriented: &SetGraph,
    ci: sisa_core::SetId,
    i: usize,
    k: usize,
    budget: &mut crate::limits::PatternBudget,
    mut listing: Option<(&mut Vec<Vec<Vertex>>, &mut Vec<Vertex>)>,
) -> u64 {
    if i == k {
        let found = rt.cardinality(ci) as u64;
        if let Some((out, prefix)) = listing.as_mut() {
            for v in rt.members(ci) {
                let mut clique = prefix.clone();
                clique.push(v);
                out.push(clique);
            }
        }
        if found > 0 {
            budget.found(found);
        }
        return found;
    }
    let mut count = 0;
    let members = rt.members(ci);
    for v in members {
        if budget.exhausted() {
            break;
        }
        rt.host_ops(2);
        let next = rt.intersect(ci, oriented.neighborhood(v));
        if rt.cardinality(next) > 0 {
            match listing.as_mut() {
                Some((out, prefix)) => {
                    prefix.push(v);
                    count +=
                        count_extensions(rt, oriented, next, i + 1, k, budget, Some((out, prefix)));
                    prefix.pop();
                }
                None => {
                    count += count_extensions(rt, oriented, next, i + 1, k, budget, None);
                }
            }
        }
        rt.delete(next);
    }
    count
}

/// Lists k-cliques explicitly (each clique misses its first two vertices in
/// the recursion prefix, so the full clique is reconstructed per leaf). Used
/// by the k-clique-star algorithms and by tests.
pub fn k_clique_list<E: SetEngine>(
    rt: &mut E,
    oriented: &SetGraph,
    k: usize,
    limits: &SearchLimits,
) -> MiningRun<Vec<Vec<Vertex>>> {
    assert!(k >= 2, "k-cliques need k >= 2");
    let mut budget = limits.budget();
    let mut tasks = Vec::new();
    let mut cliques: Vec<Vec<Vertex>> = Vec::new();
    for u in 0..oriented.num_vertices() as Vertex {
        if budget.exhausted() {
            break;
        }
        rt.task_begin();
        let mut prefix = vec![u];
        let c2 = oriented.neighborhood(u);
        if k == 2 {
            for v in rt.members(c2) {
                cliques.push(vec![u, v]);
            }
            budget.found(oriented.degree(u) as u64);
        } else {
            let before = cliques.len();
            let _ = count_extensions(
                rt,
                oriented,
                c2,
                2,
                k,
                &mut budget,
                Some((&mut cliques, &mut prefix)),
            );
            let _ = before;
        }
        tasks.push(rt.task_end());
    }
    for c in &mut cliques {
        c.sort_unstable();
    }
    MiningRun::new(cliques, tasks, budget.exhausted())
}

/// Specialised 4-clique counting (Table 4's set-centric snippet): two explicit
/// loops plus two intersections, no recursion.
pub fn four_clique_count<E: SetEngine>(
    rt: &mut E,
    oriented: &SetGraph,
    limits: &SearchLimits,
) -> MiningRun<u64> {
    let mut budget = limits.budget();
    let mut tasks = Vec::with_capacity(oriented.num_vertices());
    let mut cnt: u64 = 0;
    'outer: for v1 in 0..oriented.num_vertices() as Vertex {
        rt.task_begin();
        for &v2 in oriented.neighbors(v1) {
            rt.host_ops(2);
            let s1 = rt.intersect(oriented.neighborhood(v1), oriented.neighborhood(v2));
            for v3 in rt.members(s1) {
                let found = rt.intersect_count(s1, oriented.neighborhood(v3)) as u64;
                cnt += found;
                if found > 0 && !budget.found(found) {
                    rt.delete(s1);
                    tasks.push(rt.task_end());
                    break 'outer;
                }
            }
            rt.delete(s1);
        }
        tasks.push(rt.task_end());
    }
    MiningRun::new(cnt, tasks, budget.exhausted())
}

/// k-clique-star listing, Jabbour et al. formulation (Algorithm 4): find all
/// k-cliques, then intersect the (undirected) neighbourhoods of each clique's
/// members to find the star vertices.
///
/// Returns the number of k-clique-stars with a non-empty star extension.
pub fn k_clique_star_join<E: SetEngine>(
    rt: &mut E,
    undirected: &SetGraph,
    oriented: &SetGraph,
    k: usize,
    limits: &SearchLimits,
) -> MiningRun<u64> {
    let cliques = k_clique_list(rt, oriented, k, limits);
    let truncated = cliques.truncated;
    let mut tasks = cliques.tasks;
    let mut stars = 0u64;
    for clique in &cliques.result {
        rt.task_begin();
        // X = ∩_{u ∈ Vc} N(u) over the *undirected* neighbourhoods.
        let x = rt.clone_set(undirected.neighborhood(clique[0]));
        for &u in &clique[1..] {
            rt.host_ops(1);
            rt.intersect_assign(x, undirected.neighborhood(u));
        }
        // Gs = X ∪ Vc; the star is non-trivial if X \ Vc is non-empty.
        let vc = rt.create_sorted(clique.iter().copied());
        let extra = rt.difference_count(x, vc);
        if extra > 0 {
            stars += 1;
        }
        rt.delete(x);
        rt.delete(vc);
        tasks.push(rt.task_end());
    }
    MiningRun::new(stars, tasks, truncated)
}

/// k-clique-star listing, the paper's own variant (Algorithm 5): mine
/// (k+1)-cliques and attribute each to the k-cliques it contains via set
/// union on a map keyed by the k-clique.
///
/// Returns the number of distinct k-cliques that act as the core of at least
/// one k-clique-star (i.e. the number of maximal k-clique-stars).
pub fn k_clique_star_count<E: SetEngine>(
    rt: &mut E,
    oriented: &SetGraph,
    k: usize,
    limits: &SearchLimits,
) -> MiningRun<u64> {
    let cliques = k_clique_list(rt, oriented, k + 1, limits);
    let truncated = cliques.truncated;
    let mut tasks = cliques.tasks;
    let mut stars: HashMap<Vec<Vertex>, sisa_core::SetId> = HashMap::new();
    for clique in &cliques.result {
        rt.task_begin();
        for (i, _) in clique.iter().enumerate() {
            rt.host_ops(2);
            // Key: the k-clique obtained by dropping vertex i.
            let mut key = clique.clone();
            key.remove(i);
            let members = rt.create_sorted(clique.iter().copied());
            match stars.get(&key) {
                Some(&existing) => {
                    rt.union_assign(existing, members);
                    rt.delete(members);
                }
                None => {
                    stars.insert(key, members);
                }
            }
        }
        tasks.push(rt.task_end());
    }
    let count = stars.len() as u64;
    for (_, id) in stars {
        rt.delete(id);
    }
    MiningRun::new(count, tasks, truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisa_core::{SisaConfig, SisaRuntime};
    use sisa_graph::{generators, properties};

    fn setup(g: &CsrGraph) -> (SisaRuntime, SetGraph, SetGraph) {
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let cfg = SetGraphConfig::default();
        let undirected = SetGraph::load(&mut rt, g, &cfg);
        let (oriented, _) = orient_by_degeneracy(&mut rt, g, &cfg);
        (rt, undirected, oriented)
    }

    #[test]
    fn triangle_count_matches_reference_on_random_graphs() {
        for seed in [1u64, 2, 3] {
            let g = generators::erdos_renyi(120, 0.08, seed);
            let expected = properties::triangle_count(&g);
            let (mut rt, _und, oriented) = setup(&g);
            let run = triangle_count(&mut rt, &oriented, &SearchLimits::unlimited());
            assert_eq!(run.result, expected, "seed {seed}");
            assert!(!run.truncated);
            assert_eq!(run.tasks.len(), 120);
            assert!(run.total_cycles() > 0);
        }
    }

    #[test]
    fn k_clique_counts_match_brute_force() {
        let g = generators::planted_cliques(
            &generators::PlantedCliqueConfig {
                num_vertices: 60,
                num_cliques: 6,
                min_clique_size: 4,
                max_clique_size: 6,
                background_edges: 60,
                overlap: 0.2,
            },
            3,
        )
        .0;
        let (mut rt, _und, oriented) = setup(&g);
        for k in 3..=5 {
            let expected = properties::brute_force_k_clique_count(&g, k);
            let run = k_clique_count(&mut rt, &oriented, k, &SearchLimits::unlimited());
            assert_eq!(run.result, expected, "k = {k}");
        }
    }

    #[test]
    fn four_clique_specialisation_matches_generic() {
        let g = generators::erdos_renyi(70, 0.15, 9);
        let (mut rt, _und, oriented) = setup(&g);
        let generic = k_clique_count(&mut rt, &oriented, 4, &SearchLimits::unlimited());
        let special = four_clique_count(&mut rt, &oriented, &SearchLimits::unlimited());
        assert_eq!(generic.result, special.result);
        assert_eq!(
            special.result,
            properties::brute_force_k_clique_count(&g, 4)
        );
    }

    #[test]
    fn clique_listing_returns_real_cliques() {
        let g = generators::planted_cliques(
            &generators::PlantedCliqueConfig {
                num_vertices: 40,
                num_cliques: 4,
                min_clique_size: 4,
                max_clique_size: 5,
                background_edges: 30,
                overlap: 0.0,
            },
            7,
        )
        .0;
        let (mut rt, _und, oriented) = setup(&g);
        let run = k_clique_list(&mut rt, &oriented, 4, &SearchLimits::unlimited());
        assert_eq!(
            run.result.len() as u64,
            properties::brute_force_k_clique_count(&g, 4)
        );
        for clique in &run.result {
            assert_eq!(clique.len(), 4);
            assert!(properties::is_clique(&g, clique));
        }
        // No duplicate cliques.
        let mut sorted = run.result.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), run.result.len());
    }

    #[test]
    fn pattern_budget_truncates_the_search() {
        let g = generators::complete(20);
        let (mut rt, _und, oriented) = setup(&g);
        let full = k_clique_count(&mut rt, &oriented, 4, &SearchLimits::unlimited());
        assert_eq!(full.result, 4845); // C(20,4)
        let limited = k_clique_count(&mut rt, &oriented, 4, &SearchLimits::patterns(100));
        assert!(limited.truncated);
        assert!(limited.result < full.result);
        assert!(limited.total_cycles() < full.total_cycles());
    }

    #[test]
    fn clique_stars_on_a_known_graph() {
        // A 3-clique {0,1,2} with two extra vertices 3 and 4 attached to all
        // of it forms 3-clique-stars; vertex 5 hangs off vertex 0 only.
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (3, 0),
                (3, 1),
                (3, 2),
                (4, 0),
                (4, 1),
                (4, 2),
                (0, 5),
            ],
        );
        let (mut rt, undirected, oriented) = setup(&g);
        let join = k_clique_star_join(
            &mut rt,
            &undirected,
            &oriented,
            3,
            &SearchLimits::unlimited(),
        );
        // Every 3-clique inside {0,1,2,3,4} has at least one star vertex.
        assert!(join.result >= 1);
        let ours = k_clique_star_count(&mut rt, &oriented, 3, &SearchLimits::unlimited());
        // Algorithm 5 counts distinct 3-cliques contained in 4-cliques.
        assert!(ours.result >= 1);
        assert!(!ours.truncated);
    }

    #[test]
    fn sisa_stats_show_pim_activity() {
        let g = generators::near_complete(80, 0.5, 2);
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let cfg = SetGraphConfig {
            db_fraction: 0.5,
            storage_budget_frac: 2.0,
        };
        let (oriented, _) = orient_by_degeneracy(&mut rt, &g, &cfg);
        rt.reset_stats();
        let _ = triangle_count(&mut rt, &oriented, &SearchLimits::unlimited());
        let stats = rt.stats();
        assert!(stats.pnm_ops + stats.pum_ops > 0);
        assert!(stats.total_cycles() > 0);
        assert!(stats.total_instructions() > 0);
    }
}
