//! Incremental clique mining over an edge stream (dynamic-graph SISA path).
//!
//! A [`StreamingMiner`] keeps a [`DynamicSetGraph`] plus exact k-clique
//! counts for a tracked set of `k ≥ 3`, and maintains them **incrementally**
//! as [`GraphDelta`] batches arrive — each edge flip costs set-engine work
//! proportional to the local neighbourhood, not a from-scratch recount.
//!
//! The identity: for an edge `{u, v}` with common neighbourhood
//! `C = N(u) ∩ N(v)`, the number of k-cliques containing `{u, v}` equals the
//! number of (k−2)-cliques in the subgraph induced on `C` (for triangles,
//! just `|C|`). Since graphs are simple, `u, v ∉ C` and no neighbourhood in
//! `C` is affected by the presence of `{u, v}` itself — so the same quantity
//! is added on insert and subtracted on delete, and the counts stay exact
//! under arbitrary interleavings, including delete-then-reinsert.
//!
//! All of it is priced on the SISA cost model: `C` via `intersect`, the
//! induced-subgraph walk via `intersect`/`intersect_count`, the edge flips
//! via element `insert`/`remove` on the endpoint adjacency sets.

use crate::Vertex;
use sisa_core::{DynamicSetGraph, SetEngine, SetId};
use sisa_graph::{CsrGraph, GraphDelta};
use std::collections::BTreeMap;

/// What a [`StreamingMiner::apply`] call actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyReport {
    /// Edge intents that changed the graph (and the counts).
    pub applied: usize,
    /// Intents that were no-ops: deleting an absent edge, inserting a
    /// present one, or naming an out-of-range endpoint on delete.
    pub skipped: usize,
}

/// A dynamic graph with incrementally-maintained k-clique counts.
#[derive(Clone, Debug)]
pub struct StreamingMiner {
    graph: DynamicSetGraph,
    counts: BTreeMap<usize, u64>,
}

impl StreamingMiner {
    /// Loads `g` with exact counts for every `k` in `ks` (each `k ≥ 3`).
    ///
    /// The initial counts are themselves produced by the incremental path —
    /// the graph is built edge by edge from empty — so a freshly loaded
    /// miner is consistent with the update rule by construction.
    ///
    /// # Panics
    ///
    /// Panics when any tracked `k` is below 3.
    #[must_use]
    pub fn load<E: SetEngine>(rt: &mut E, g: &CsrGraph, ks: &[usize]) -> Self {
        StreamingMiner::load_with_capacity(rt, g, ks, g.num_vertices())
    }

    /// Like [`StreamingMiner::load`], but reserving room for `capacity`
    /// vertices (clamped up to `g.num_vertices()`) so deltas that name new
    /// vertices can still be applied incrementally.
    ///
    /// # Panics
    ///
    /// Panics when any tracked `k` is below 3.
    #[must_use]
    pub fn load_with_capacity<E: SetEngine>(
        rt: &mut E,
        g: &CsrGraph,
        ks: &[usize],
        capacity: usize,
    ) -> Self {
        let mut counts = BTreeMap::new();
        for &k in ks {
            assert!(k >= 3, "streaming clique counts need k >= 3, got {k}");
            counts.insert(k, 0u64);
        }
        let mut miner = StreamingMiner {
            graph: DynamicSetGraph::empty(rt, capacity.max(g.num_vertices())),
            counts,
        };
        for (u, v) in g.edges() {
            miner.adjust(rt, u, v, true);
            miner.graph.insert_edge(rt, u, v);
        }
        miner
    }

    /// Applies a delta — deletes first, then inserts, no-ops filtered — and
    /// updates every tracked count. Returns what changed.
    ///
    /// # Panics
    ///
    /// Panics when an *insert* names a vertex at or beyond the capacity:
    /// growth means a rebuild, which is the caller's call (gate with
    /// [`StreamingMiner::fits`]). Out-of-range deletes are plain no-ops —
    /// the named edge cannot exist here.
    pub fn apply<E: SetEngine>(&mut self, rt: &mut E, delta: &GraphDelta) -> ApplyReport {
        let mut report = ApplyReport::default();
        for (u, v) in delta.normalized_deletes() {
            if self.graph.in_range(u, v) && self.graph.has_edge(u, v) {
                self.adjust(rt, u, v, false);
                self.graph.remove_edge(rt, u, v);
                report.applied += 1;
            } else {
                report.skipped += 1;
            }
        }
        for (u, v) in delta.normalized_inserts() {
            assert!(
                self.graph.in_range(u, v),
                "insert ({u}, {v}) exceeds capacity {}; rebuild the miner",
                self.capacity()
            );
            if self.graph.has_edge(u, v) {
                report.skipped += 1;
            } else {
                self.adjust(rt, u, v, true);
                self.graph.insert_edge(rt, u, v);
                report.applied += 1;
            }
        }
        report
    }

    /// Whether `delta` can be applied without growing the vertex capacity.
    #[must_use]
    pub fn fits(&self, delta: &GraphDelta) -> bool {
        delta
            .max_vertex()
            .is_none_or(|m| (m as usize) < self.capacity())
    }

    /// The maintained count for `k`, if tracked.
    #[must_use]
    pub fn count(&self, k: usize) -> Option<u64> {
        self.counts.get(&k).copied()
    }

    /// The tracked clique sizes, ascending.
    #[must_use]
    pub fn tracked(&self) -> Vec<usize> {
        self.counts.keys().copied().collect()
    }

    /// Vertex capacity (fixed at load).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Current undirected edge count.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Whether the undirected edge `{u, v}` currently exists (in-range only).
    #[must_use]
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.graph.in_range(u, v) && self.graph.has_edge(u, v)
    }

    /// Snapshot of the current edge set as a CSR (host-side; for reference
    /// recomputations and tests).
    #[must_use]
    pub fn to_csr(&self) -> CsrGraph {
        self.graph.to_csr()
    }

    /// Deletes every engine set the miner holds.
    pub fn unload<E: SetEngine>(self, rt: &mut E) {
        self.graph.unload(rt);
    }

    /// Adds (`add`) or subtracts the per-edge clique contribution of
    /// `{u, v}` to every tracked count. Must be called while the edge is
    /// *absent* on insert and *present* on delete — either way the value is
    /// identical because `u, v ∉ C` and the induced subgraph on `C` never
    /// sees the edge `{u, v}`.
    fn adjust<E: SetEngine>(&mut self, rt: &mut E, u: Vertex, v: Vertex, add: bool) {
        if self.counts.is_empty() {
            return;
        }
        let common = rt.intersect(self.graph.neighborhood(u), self.graph.neighborhood(v));
        let ks: Vec<usize> = self.counts.keys().copied().collect();
        for k in ks {
            let delta = cliques_within(rt, &self.graph, common, k - 2);
            let entry = self.counts.get_mut(&k).expect("tracked k");
            if add {
                *entry += delta;
            } else {
                *entry = entry.checked_sub(delta).expect("count underflow");
            }
        }
        rt.delete(common);
    }
}

/// Counts the j-cliques of the subgraph induced on the set `c`, as set ops.
///
/// Ascending elimination: clone `c` into `W`, then for each member `w` remove
/// it from `W` first, so every clique is discovered exactly once from its
/// iteration-least member. `j = 2` bottoms out in `intersect_count`
/// (edges within `c`), `j = 1` is `|c|`, `j = 0` is the empty clique.
fn cliques_within<E: SetEngine>(rt: &mut E, dg: &DynamicSetGraph, c: SetId, j: usize) -> u64 {
    match j {
        0 => 1,
        1 => rt.cardinality(c) as u64,
        _ => {
            let mut total = 0u64;
            let rest = rt.clone_set(c);
            for w in rt.members(c) {
                rt.remove(rest, w);
                rt.host_ops(1);
                if j == 2 {
                    total += rt.intersect_count(rest, dg.neighborhood(w)) as u64;
                } else {
                    let next = rt.intersect(rest, dg.neighborhood(w));
                    total += cliques_within(rt, dg, next, j - 1);
                    rt.delete(next);
                }
            }
            rt.delete(rest);
            total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limits::SearchLimits;
    use crate::setcentric::{k_clique_count, orient_by_degeneracy, triangle_count};
    use proptest::prelude::*;
    use sisa_core::{SetGraphConfig, SisaConfig, SisaRuntime};
    use sisa_graph::generators;

    /// Reference: from-scratch static counts on a snapshot of the graph.
    fn recount(g: &CsrGraph, ks: &[usize]) -> BTreeMap<usize, u64> {
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let (oriented, _) = orient_by_degeneracy(&mut rt, g, &SetGraphConfig::default());
        ks.iter()
            .map(|&k| {
                let n = if k == 3 {
                    triangle_count(&mut rt, &oriented, &SearchLimits::unlimited()).result
                } else {
                    k_clique_count(&mut rt, &oriented, k, &SearchLimits::unlimited()).result
                };
                (k, n)
            })
            .collect()
    }

    fn assert_matches_recount(miner: &StreamingMiner, ks: &[usize]) {
        let reference = recount(&miner.to_csr(), ks);
        for &k in ks {
            assert_eq!(
                miner.count(k),
                Some(reference[&k]),
                "incremental {k}-clique count diverged from recount"
            );
        }
    }

    #[test]
    fn loading_reproduces_static_counts() {
        let ks = [3, 4, 5];
        for seed in 0..4 {
            let g = generators::erdos_renyi(28, 0.25, seed);
            let mut rt = SisaRuntime::new(SisaConfig::default());
            let miner = StreamingMiner::load(&mut rt, &g, &ks);
            assert_matches_recount(&miner, &ks);
            miner.unload(&mut rt);
            assert_eq!(rt.live_sets(), 0, "unload frees everything");
        }
    }

    #[test]
    fn inserts_and_deletes_track_the_recount() {
        let ks = [3, 4];
        let g = generators::erdos_renyi(24, 0.2, 9);
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let mut miner = StreamingMiner::load(&mut rt, &g, &ks);

        // Densify a corner, then tear part of it down again.
        let grow = GraphDelta::new()
            .insert(0, 1)
            .insert(0, 2)
            .insert(1, 2)
            .insert(2, 3)
            .insert(1, 3)
            .insert(0, 3);
        miner.apply(&mut rt, &grow);
        assert_matches_recount(&miner, &ks);

        let shrink = GraphDelta::new().delete(1, 2).delete(0, 3).delete(22, 23);
        miner.apply(&mut rt, &shrink);
        assert_matches_recount(&miner, &ks);
    }

    #[test]
    fn delete_then_reinsert_in_one_delta_is_count_neutral() {
        let ks = [3, 4];
        let g = generators::complete(6);
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let mut miner = StreamingMiner::load(&mut rt, &g, &ks);
        let before: Vec<_> = ks.iter().map(|&k| miner.count(k)).collect();

        let delta = GraphDelta::new().delete(2, 4).insert(2, 4);
        let report = miner.apply(&mut rt, &delta);
        assert_eq!(report.applied, 2, "delete then reinsert both take effect");
        let after: Vec<_> = ks.iter().map(|&k| miner.count(k)).collect();
        assert_eq!(before, after);
        assert_matches_recount(&miner, &ks);
    }

    #[test]
    fn no_op_intents_are_skipped_and_counts_hold() {
        let g = generators::path(5);
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let mut miner = StreamingMiner::load(&mut rt, &g, &[3]);
        let delta = GraphDelta::new()
            .delete(0, 4) // absent edge
            .delete(0, 90) // out of range: cannot exist
            .insert(0, 1) // already present
            .insert(3, 3); // self-loop, normalised away
        let report = miner.apply(&mut rt, &delta);
        assert_eq!(
            report,
            ApplyReport {
                applied: 0,
                skipped: 3
            }
        );
        assert_eq!(miner.count(3), Some(0));
        assert!(!miner.fits(&GraphDelta::new().insert(0, 5)));
        assert!(miner.fits(&GraphDelta::new().insert(0, 4)));
    }

    proptest! {
        /// Differential pin: after an arbitrary interleaving of inserts and
        /// deletes (including delete-then-reinsert within one delta), the
        /// incremental counts equal a from-scratch recount on the snapshot.
        #[test]
        fn incremental_counts_match_recount_after_random_stream(seed in 0u64..1_000_000) {
            let n: usize = 12;
            let ks = [3, 4];
            let g = generators::erdos_renyi(n, 0.3, seed);
            let mut rt = SisaRuntime::new(SisaConfig::default());
            let mut miner = StreamingMiner::load(&mut rt, &g, &ks);

            // Deterministic splitmix-style stream derived from the seed.
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state >> 33
            };
            for _round in 0..6 {
                let mut delta = GraphDelta::new();
                for _ in 0..(1 + next() as usize % 5) {
                    let u = (next() as usize % n) as u32;
                    let v = (next() as usize % n) as u32;
                    if next() % 2 == 0 {
                        delta = delta.insert(u, v);
                    } else {
                        delta = delta.delete(u, v);
                    }
                }
                // Occasionally delete and re-insert the same edge.
                if next() % 3 == 0 {
                    let u = (next() as usize % n) as u32;
                    let v = (next() as usize % n) as u32;
                    delta = delta.delete(u, v).insert(u, v);
                }
                miner.apply(&mut rt, &delta);
                assert_matches_recount(&miner, &ks);
            }
        }
    }
}
