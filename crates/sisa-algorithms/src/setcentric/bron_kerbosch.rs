//! Set-centric Bron–Kerbosch maximal clique listing (paper §5.1.2,
//! Algorithm 2), with pivoting and the degeneracy-ordering outer loop of
//! Eppstein et al.
//!
//! The auxiliary sets `P` (candidates), `X` (excluded) and the per-branch
//! intersections `P ∩ N(v)` / `X ∩ N(v)` are SISA sets; following the paper's
//! recommendation (§6.2.4, §7.2) they are created as dense bitvectors, so that
//! element insertion/removal is `O(1)` and intersections with large
//! neighbourhoods run on SISA-PUM.

use crate::limits::{PatternBudget, SearchLimits};
use crate::{MiningRun, Vertex};
use sisa_core::{SetEngine, SetGraph, SetId};
use sisa_graph::orientation::DegeneracyOrdering;

/// Result of a maximal-clique run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MaximalCliques {
    /// Number of maximal cliques found (within the pattern budget).
    pub count: u64,
    /// The cliques themselves (sorted), collected only when `collect` is set.
    pub cliques: Vec<Vec<Vertex>>,
    /// Size of the largest maximal clique seen.
    pub max_size: usize,
}

/// Runs Bron–Kerbosch with pivoting over the degeneracy ordering.
///
/// `g` is the *undirected* [`SetGraph`]; `ordering` its degeneracy ordering
/// (from [`crate::setcentric::orient_by_degeneracy`] or
/// [`sisa_graph::orientation::degeneracy_order`]). When `collect` is true the
/// cliques themselves are returned (useful for validation on small graphs);
/// otherwise only counts are kept.
pub fn maximal_cliques<E: SetEngine>(
    rt: &mut E,
    g: &SetGraph,
    ordering: &DegeneracyOrdering,
    limits: &SearchLimits,
    collect: bool,
) -> MiningRun<MaximalCliques> {
    let n = g.num_vertices();
    let mut budget = limits.budget();
    let mut tasks = Vec::with_capacity(n);
    let mut result = MaximalCliques::default();

    // Outer loop over vertices in degeneracy order (each iteration is a task).
    for &v in &ordering.order {
        if budget.exhausted() {
            break;
        }
        rt.task_begin();
        // P = N(v) ∩ {vertices after v in the ordering}
        // X = N(v) ∩ {vertices before v}
        let rank_v = ordering.rank[v as usize];
        let later: Vec<Vertex> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| ordering.rank[w as usize] > rank_v)
            .collect();
        let earlier: Vec<Vertex> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| ordering.rank[w as usize] < rank_v)
            .collect();
        rt.host_ops(g.degree(v) as u64);
        let p = rt.create_dense(later);
        let x = rt.create_dense(earlier);
        let mut r = vec![v];
        bk_pivot(rt, g, &mut r, p, x, &mut budget, collect, &mut result);
        rt.delete(p);
        rt.delete(x);
        tasks.push(rt.task_end());
    }
    if collect {
        result.cliques.sort();
    }
    MiningRun::new(result, tasks, budget.exhausted())
}

#[allow(clippy::too_many_arguments)]
fn bk_pivot<E: SetEngine>(
    rt: &mut E,
    g: &SetGraph,
    r: &mut Vec<Vertex>,
    p: SetId,
    x: SetId,
    budget: &mut PatternBudget,
    collect: bool,
    out: &mut MaximalCliques,
) {
    if budget.exhausted() {
        return;
    }
    let p_size = rt.cardinality(p);
    let x_size = rt.cardinality(x);
    if p_size == 0 && x_size == 0 {
        // R is a maximal clique.
        out.count += 1;
        out.max_size = out.max_size.max(r.len());
        if collect {
            let mut clique = r.clone();
            clique.sort_unstable();
            out.cliques.push(clique);
        }
        budget.found(1);
        return;
    }
    if p_size == 0 {
        return;
    }

    // Pivot selection: u ∈ P ∪ X maximising |P ∩ N(u)| (Tomita/Eppstein).
    let mut pivot = None;
    let mut best = 0usize;
    for u in rt.members(p).into_iter().chain(rt.members(x)) {
        rt.host_ops(1);
        let common = rt.intersect_count(p, g.neighborhood(u));
        if pivot.is_none() || common > best {
            best = common;
            pivot = Some(u);
        }
    }
    let pivot = pivot.expect("P is non-empty, so a pivot exists");

    // Candidates = P \ N(pivot).
    let candidates_set = rt.difference(p, g.neighborhood(pivot));
    let candidates = rt.members(candidates_set);
    rt.delete(candidates_set);

    for q in candidates {
        if budget.exhausted() {
            break;
        }
        rt.host_ops(2);
        let p_next = rt.intersect(p, g.neighborhood(q));
        let x_next = rt.intersect(x, g.neighborhood(q));
        r.push(q);
        bk_pivot(rt, g, r, p_next, x_next, budget, collect, out);
        r.pop();
        rt.delete(p_next);
        rt.delete(x_next);
        // P = P \ {q}; X = X ∪ {q}.
        rt.remove(p, q);
        rt.insert(x, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisa_core::{SetGraphConfig, SisaConfig, SisaRuntime};
    use sisa_graph::orientation::degeneracy_order;
    use sisa_graph::{generators, properties, CsrGraph};

    fn run_bk(g: &CsrGraph, limits: &SearchLimits, collect: bool) -> MiningRun<MaximalCliques> {
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let sg = SetGraph::load(&mut rt, g, &SetGraphConfig::default());
        let ordering = degeneracy_order(g);
        rt.reset_stats();
        maximal_cliques(&mut rt, &sg, &ordering, limits, collect)
    }

    #[test]
    fn finds_exactly_the_maximal_cliques_of_small_graphs() {
        // Two triangles sharing a vertex plus an isolated edge.
        let g = CsrGraph::from_edges(7, &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4), (5, 6)]);
        let run = run_bk(&g, &SearchLimits::unlimited(), true);
        let expected = properties::brute_force_maximal_cliques(&g);
        assert_eq!(run.result.cliques, expected);
        assert_eq!(run.result.count, expected.len() as u64);
        assert_eq!(run.result.max_size, 3);
        assert!(!run.truncated);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in [11u64, 12, 13] {
            let g = generators::erdos_renyi(18, 0.35, seed);
            let run = run_bk(&g, &SearchLimits::unlimited(), true);
            let expected = properties::brute_force_maximal_cliques(&g);
            assert_eq!(run.result.cliques, expected, "seed {seed}");
        }
    }

    #[test]
    fn complete_graph_has_one_maximal_clique() {
        let g = generators::complete(12);
        let run = run_bk(&g, &SearchLimits::unlimited(), true);
        assert_eq!(run.result.count, 1);
        assert_eq!(run.result.max_size, 12);
        assert_eq!(run.result.cliques[0], (0..12u32).collect::<Vec<_>>());
    }

    #[test]
    fn planted_cliques_are_reported_as_maximal() {
        let (g, planted) = generators::planted_cliques(
            &generators::PlantedCliqueConfig {
                num_vertices: 80,
                num_cliques: 5,
                min_clique_size: 5,
                max_clique_size: 7,
                background_edges: 0,
                overlap: 0.0,
            },
            21,
        );
        let run = run_bk(&g, &SearchLimits::unlimited(), true);
        for clique in &planted {
            // Every planted clique must be contained in some reported maximal
            // clique (it may have merged with an overlapping one).
            assert!(
                run.result
                    .cliques
                    .iter()
                    .any(|mc| clique.iter().all(|v| mc.contains(v))),
                "planted clique {clique:?} not covered"
            );
        }
    }

    #[test]
    fn budget_truncates_enumeration() {
        let g = generators::near_complete(40, 0.7, 5);
        let full = run_bk(&g, &SearchLimits::unlimited(), false);
        assert!(full.result.count > 50);
        let limited = run_bk(&g, &SearchLimits::patterns(20), false);
        assert!(limited.truncated);
        assert!(limited.result.count <= 21);
        assert!(limited.total_cycles() < full.total_cycles());
    }

    #[test]
    fn task_count_matches_outer_loop() {
        let g = generators::erdos_renyi(50, 0.1, 2);
        let run = run_bk(&g, &SearchLimits::unlimited(), false);
        assert_eq!(run.tasks.len(), 50);
    }
}
