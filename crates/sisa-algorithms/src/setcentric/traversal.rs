//! Set-centric traversal-style algorithms: BFS (paper §5.3, Algorithm 12) and
//! the approximate degeneracy ordering (§5.1.5, Algorithm 6).
//!
//! BFS is included as the paper's worked example of a "low-complexity"
//! algorithm expressed set-centrically (frontier and unvisited sets as dense
//! bitvectors); the approximate degeneracy ordering is itself accelerated by
//! SISA because several pattern-matching formulations consume it.

use crate::limits::SearchLimits;
use crate::{MiningRun, Vertex};
use sisa_core::{SetEngine, SetGraph};

/// Which BFS strategy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BfsMode {
    /// Classic frontier expansion (`#if TOP_DOWN_BFS`).
    TopDown,
    /// Bottom-up: unvisited vertices look for a parent in the frontier.
    BottomUp,
    /// Direction-optimising: switch to bottom-up when the frontier grows
    /// beyond a fraction of the remaining vertices.
    DirectionOptimizing,
}

/// Set-centric BFS from `root`; returns the parent of every reached vertex
/// (`parent[root] == root`, unreached vertices are `None`).
pub fn bfs<E: SetEngine>(
    rt: &mut E,
    g: &SetGraph,
    root: Vertex,
    mode: BfsMode,
) -> MiningRun<Vec<Option<Vertex>>> {
    let n = g.num_vertices();
    let mut parent: Vec<Option<Vertex>> = vec![None; n];
    parent[root as usize] = Some(root);

    // Π: unvisited vertices (dense bitvector of n bits, as the paper notes).
    let unvisited = rt.create_full_dense();
    rt.remove(unvisited, root);
    // F: the frontier.
    let mut frontier = rt.create_dense([root]);
    let mut tasks = Vec::new();

    loop {
        let frontier_size = rt.cardinality(frontier);
        if frontier_size == 0 {
            break;
        }
        rt.task_begin();
        let remaining = rt.cardinality(unvisited);
        let bottom_up = match mode {
            BfsMode::TopDown => false,
            BfsMode::BottomUp => true,
            BfsMode::DirectionOptimizing => frontier_size * 8 > remaining.max(1),
        };
        let new_frontier = rt.create_empty_dense();
        if bottom_up {
            // for w ∈ Π: for u ∈ N(w) ∩ F: adopt the first parent found.
            for w in rt.members(unvisited) {
                rt.host_ops(1);
                let in_frontier = rt.intersect(g.neighborhood(w), frontier);
                let parents = rt.members(in_frontier);
                rt.delete(in_frontier);
                if let Some(&u) = parents.first() {
                    parent[w as usize] = Some(u);
                    rt.insert(new_frontier, w);
                    rt.remove(unvisited, w);
                }
            }
        } else {
            // for u ∈ F: for w ∈ N(u) ∩ Π: set parent, move to new frontier.
            for u in rt.members(frontier) {
                rt.host_ops(1);
                let fresh = rt.intersect(g.neighborhood(u), unvisited);
                for w in rt.members(fresh) {
                    if parent[w as usize].is_none() {
                        parent[w as usize] = Some(u);
                    }
                    rt.insert(new_frontier, w);
                    rt.remove(unvisited, w);
                }
                rt.delete(fresh);
            }
        }
        rt.delete(frontier);
        frontier = new_frontier;
        tasks.push(rt.task_end());
    }
    rt.delete(frontier);
    rt.delete(unvisited);
    MiningRun::new(parent, tasks, false)
}

/// The result of the approximate degeneracy ordering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApproximateDegeneracy {
    /// The round in which each vertex was peeled (vertices peeled earlier have
    /// lower degeneracy rank).
    pub round_of: Vec<usize>,
    /// Number of peeling rounds executed (`O(log n)` for constant ε).
    pub rounds: usize,
}

impl ApproximateDegeneracy {
    /// A total vertex order consistent with the rounds (ties broken by id).
    #[must_use]
    pub fn order(&self) -> Vec<Vertex> {
        let mut order: Vec<Vertex> = (0..self.round_of.len() as Vertex).collect();
        order.sort_by_key(|&v| (self.round_of[v as usize], v));
        order
    }
}

/// Set-centric approximate degeneracy ordering (Algorithm 6): in each round,
/// peel every vertex whose remaining degree is at most `(1 + eps)` times the
/// current average degree; `V \= X` and `N(v) \= X` are SISA set differences.
pub fn approximate_degeneracy<E: SetEngine>(
    rt: &mut E,
    g: &SetGraph,
    eps: f64,
    _limits: &SearchLimits,
) -> MiningRun<ApproximateDegeneracy> {
    assert!(eps > 0.0, "epsilon must be positive");
    let n = g.num_vertices();
    let mut round_of = vec![0usize; n];
    let mut tasks = Vec::new();

    // Working copies of the neighbourhoods (the algorithm mutates them).
    let live_neighborhoods: Vec<sisa_core::SetId> = (0..n as Vertex)
        .map(|v| rt.clone_set(g.neighborhood(v)))
        .collect();
    let alive = rt.create_full_dense();
    let mut round = 0usize;

    while rt.cardinality(alive) > 0 {
        rt.task_begin();
        let alive_members = rt.members(alive);
        let total_degree: usize = alive_members
            .iter()
            .map(|&v| rt.cardinality(live_neighborhoods[v as usize]))
            .sum();
        let threshold = (1.0 + eps) * total_degree as f64 / alive_members.len() as f64;
        // X = {v ∈ V : |N(v)| ≤ (1 + eps) · avg}
        let peel: Vec<Vertex> = alive_members
            .iter()
            .copied()
            .filter(|&v| rt.cardinality(live_neighborhoods[v as usize]) as f64 <= threshold)
            .collect();
        rt.host_ops(alive_members.len() as u64);
        let x = rt.create_dense(peel.iter().copied());
        for &v in &peel {
            round_of[v as usize] = round;
        }
        // V \= X.
        rt.difference_assign(alive, x);
        // N(v) \= X for the surviving vertices.
        for v in rt.members(alive) {
            rt.difference_assign(live_neighborhoods[v as usize], x);
        }
        rt.delete(x);
        round += 1;
        tasks.push(rt.task_end());
    }
    rt.delete(alive);
    for id in live_neighborhoods {
        rt.delete(id);
    }
    MiningRun::new(
        ApproximateDegeneracy {
            round_of,
            rounds: round,
        },
        tasks,
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisa_core::{SetGraphConfig, SisaConfig, SisaRuntime};
    use sisa_graph::{generators, orientation, properties, CsrGraph};

    fn setup(g: &CsrGraph) -> (SisaRuntime, SetGraph) {
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let sg = SetGraph::load(&mut rt, g, &SetGraphConfig::default());
        (rt, sg)
    }

    fn check_bfs_tree(g: &CsrGraph, root: Vertex, parent: &[Option<Vertex>]) {
        let comp = properties::connected_components(g);
        for v in 0..g.num_vertices() {
            let reachable = comp[v] == comp[root as usize];
            assert_eq!(parent[v].is_some(), reachable, "vertex {v}");
            if let Some(p) = parent[v] {
                if v as Vertex != root {
                    assert!(g.has_edge(p, v as Vertex), "parent edge {p}-{v} missing");
                }
            }
        }
    }

    #[test]
    fn all_bfs_modes_build_valid_trees() {
        let g = generators::erdos_renyi(200, 0.02, 17);
        let (mut rt, sg) = setup(&g);
        for mode in [
            BfsMode::TopDown,
            BfsMode::BottomUp,
            BfsMode::DirectionOptimizing,
        ] {
            let run = bfs(&mut rt, &sg, 0, mode);
            check_bfs_tree(&g, 0, &run.result);
            assert!(!run.tasks.is_empty());
        }
    }

    #[test]
    fn bfs_on_a_path_reaches_everything_in_order() {
        let g = generators::path(50);
        let (mut rt, sg) = setup(&g);
        let run = bfs(&mut rt, &sg, 0, BfsMode::TopDown);
        for v in 1..50usize {
            assert_eq!(run.result[v], Some(v as Vertex - 1));
        }
        // 49 levels plus the final (emptying) expansion → 50 tasks.
        assert_eq!(run.tasks.len(), 50);
    }

    #[test]
    fn bfs_leaves_other_components_unreached() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (mut rt, sg) = setup(&g);
        let run = bfs(&mut rt, &sg, 0, BfsMode::DirectionOptimizing);
        assert!(run.result[3].is_none());
        assert!(run.result[5].is_none());
        assert_eq!(run.result[0], Some(0));
    }

    #[test]
    fn approximate_degeneracy_orients_with_bounded_outdegree() {
        let g = generators::barabasi_albert(300, 3, 7);
        let (mut rt, sg) = setup(&g);
        let run = approximate_degeneracy(&mut rt, &sg, 0.5, &SearchLimits::unlimited());
        let exact = orientation::degeneracy_order(&g);
        // Build ranks from the approximate order and orient the graph.
        let order = run.result.order();
        let mut rank = vec![0usize; 300];
        for (i, &v) in order.iter().enumerate() {
            rank[v as usize] = i;
        }
        let oriented = g.oriented_by(&rank);
        // (2 + eps)-approximation with slack for the averaging heuristic.
        let bound = ((2.0 + 0.5) * exact.degeneracy as f64).ceil() as usize + 2;
        assert!(
            oriented.max_degree() <= bound,
            "approx out-degree {} vs bound {bound}",
            oriented.max_degree()
        );
        assert!(run.result.rounds <= 64);
        assert_eq!(run.tasks.len(), run.result.rounds);
    }

    #[test]
    fn approximate_degeneracy_peels_a_star_in_few_rounds() {
        let g = generators::star(100);
        let (mut rt, sg) = setup(&g);
        let run = approximate_degeneracy(&mut rt, &sg, 0.1, &SearchLimits::unlimited());
        // Leaves go in round 0; the hub in a later round (or the same if the
        // average collapses immediately) — rounds stay tiny either way.
        assert!(run.result.rounds <= 3);
        assert!(run.result.round_of[0] >= run.result.round_of[1]);
    }
}
