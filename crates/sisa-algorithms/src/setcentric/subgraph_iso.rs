//! Set-centric subgraph isomorphism (paper §5.1.6) and frequent subgraph
//! mining (§5.1.7).
//!
//! The matcher follows the VF2 recipe the paper uses: pattern vertices are
//! matched one at a time; the candidate set for the next pattern vertex is the
//! *intersection of the target neighbourhoods* of its already-matched pattern
//! neighbours, minus the already-used target vertices — both SISA set
//! operations — and label compatibility is verified per candidate
//! (`verify_labels`). Frequent subgraph mining runs the Apriori-style loop of
//! Algorithm 8 with this matcher as its counting kernel.

use crate::limits::{PatternBudget, SearchLimits};
use crate::{MiningRun, Vertex};
use sisa_core::{SetEngine, SetGraph};

/// A small pattern graph (the graph `G₂` being searched for).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternGraph {
    adj: Vec<Vec<Vertex>>,
    labels: Option<Vec<u32>>,
}

impl PatternGraph {
    /// Creates a pattern with `n` vertices and the given undirected edges.
    #[must_use]
    pub fn new(n: usize, edges: &[(Vertex, Vertex)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u != v {
                adj[u as usize].push(v);
                adj[v as usize].push(u);
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        Self { adj, labels: None }
    }

    /// Attaches vertex labels (one per pattern vertex).
    #[must_use]
    pub fn with_labels(mut self, labels: Vec<u32>) -> Self {
        assert_eq!(labels.len(), self.adj.len());
        self.labels = Some(labels);
        self
    }

    /// Number of pattern vertices.
    #[must_use]
    pub fn size(&self) -> usize {
        self.adj.len()
    }

    /// Number of pattern edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Neighbourhood of pattern vertex `v`.
    #[must_use]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.adj[v as usize]
    }

    /// The label of pattern vertex `v` (`None` when unlabelled).
    #[must_use]
    pub fn label(&self, v: Vertex) -> Option<u32> {
        self.labels.as_ref().map(|l| l[v as usize])
    }

    /// Whether the pattern carries labels.
    #[must_use]
    pub fn is_labeled(&self) -> bool {
        self.labels.is_some()
    }

    /// A matching order in which every vertex (after the first) has at least
    /// one earlier neighbour; falls back to index order for disconnected
    /// patterns.
    #[must_use]
    pub fn matching_order(&self) -> Vec<Vertex> {
        let n = self.size();
        if n == 0 {
            return Vec::new();
        }
        // Start from the highest-degree vertex (cheapest pruning).
        let start = (0..n as Vertex)
            .max_by_key(|&v| self.adj[v as usize].len())
            .unwrap_or(0);
        let mut order = vec![start];
        let mut in_order = vec![false; n];
        in_order[start as usize] = true;
        while order.len() < n {
            // Prefer a vertex adjacent to the already-ordered prefix.
            let next = (0..n as Vertex)
                .filter(|&v| !in_order[v as usize])
                .max_by_key(|&v| {
                    self.adj[v as usize]
                        .iter()
                        .filter(|&&u| in_order[u as usize])
                        .count()
                })
                .expect("unordered vertex exists");
            in_order[next as usize] = true;
            order.push(next);
        }
        order
    }
}

/// The `k`-star pattern: a hub (vertex 0) connected to `k` leaves — the
/// `si-ks` workload of the paper's evaluation.
#[must_use]
pub fn star_pattern(k: usize) -> PatternGraph {
    let edges: Vec<(Vertex, Vertex)> = (1..=k as Vertex).map(|v| (0, v)).collect();
    PatternGraph::new(k + 1, &edges)
}

/// Counts embeddings (injective, adjacency- and label-preserving mappings) of
/// `pattern` into the target graph `g`.
///
/// Each outer candidate for the first pattern vertex is a separate task.
pub fn subgraph_isomorphism_count<E: SetEngine>(
    rt: &mut E,
    g: &SetGraph,
    pattern: &PatternGraph,
    limits: &SearchLimits,
) -> MiningRun<u64> {
    if pattern.size() == 0 {
        return MiningRun::new(0, Vec::new(), false);
    }
    let order = pattern.matching_order();
    let mut budget = limits.budget();
    let mut tasks = Vec::new();
    let mut count = 0u64;

    for root in 0..g.num_vertices() as Vertex {
        if budget.exhausted() {
            break;
        }
        if !labels_match(g, root, pattern, order[0]) {
            continue;
        }
        rt.task_begin();
        // The set of already-used target vertices has at most |pattern|
        // entries; following the paper's guidance that trivial bookkeeping
        // structures need not become SISA sets (§5, "Does SISA Execute All
        // Set Operations?"), it stays host-side.
        let mut used: Vec<Vertex> = vec![root];
        let mut mapping: Vec<Option<Vertex>> = vec![None; pattern.size()];
        mapping[order[0] as usize] = Some(root);
        count += extend(
            rt,
            g,
            pattern,
            &order,
            1,
            &mut mapping,
            &mut used,
            &mut budget,
        );
        tasks.push(rt.task_end());
    }
    MiningRun::new(count, tasks, budget.exhausted())
}

fn labels_match(g: &SetGraph, target: Vertex, pattern: &PatternGraph, pv: Vertex) -> bool {
    match pattern.label(pv) {
        None => true,
        Some(l) => g.csr().vertex_label(target) == Some(l),
    }
}

#[allow(clippy::too_many_arguments)]
fn extend<E: SetEngine>(
    rt: &mut E,
    g: &SetGraph,
    pattern: &PatternGraph,
    order: &[Vertex],
    depth: usize,
    mapping: &mut Vec<Option<Vertex>>,
    used: &mut Vec<Vertex>,
    budget: &mut PatternBudget,
) -> u64 {
    if depth == order.len() {
        budget.found(1);
        return 1;
    }
    if budget.exhausted() {
        return 0;
    }
    let pv = order[depth];
    // Candidate set: intersection of the target neighbourhoods of the
    // already-matched pattern neighbours of pv (checkCore, expressed with
    // SISA intersections when more than one neighbourhood is involved).
    let matched_neighbors: Vec<Vertex> = pattern
        .neighbors(pv)
        .iter()
        .copied()
        .filter_map(|q| mapping[q as usize])
        .collect();
    let candidates: Vec<Vertex> = match matched_neighbors.len() {
        // Disconnected pattern component: every target vertex is a candidate
        // (used ones are filtered below).
        0 => (0..g.num_vertices() as Vertex).collect(),
        // Exactly one matched neighbour: its neighbourhood *is* the candidate
        // set — no SISA operation is needed beyond reading it out.
        1 => rt.members(g.neighborhood(matched_neighbors[0])),
        _ => {
            rt.host_ops(matched_neighbors.len() as u64);
            let cand = rt.intersect(
                g.neighborhood(matched_neighbors[0]),
                g.neighborhood(matched_neighbors[1]),
            );
            for &t in &matched_neighbors[2..] {
                rt.intersect_assign(cand, g.neighborhood(t));
            }
            let members = rt.members(cand);
            rt.delete(cand);
            members
        }
    };

    let mut total = 0u64;
    for c in candidates {
        if budget.exhausted() {
            break;
        }
        rt.host_ops(1);
        if used.contains(&c) || !labels_match(g, c, pattern, pv) {
            continue;
        }
        mapping[pv as usize] = Some(c);
        used.push(c);
        total += extend(rt, g, pattern, order, depth + 1, mapping, used, budget);
        used.pop();
        mapping[pv as usize] = None;
    }
    total
}

/// A frequent pattern discovered by [`frequent_subgraphs`].
#[derive(Clone, Debug, PartialEq)]
pub struct FrequentPattern {
    /// The pattern graph (labelled).
    pub pattern: PatternGraph,
    /// Number of embeddings found in the target graph.
    pub support: u64,
}

/// Apriori-style frequent subgraph mining (Algorithm 8), restricted — as in
/// the tree-join kernel the paper cites — to tree-shaped candidate patterns:
/// level-`k` candidates extend a frequent level-`k−1` pattern by one new
/// labelled vertex attached to one existing vertex.
///
/// `min_support` is the absolute embedding-count threshold (the paper's
/// `σ · n`); `max_size` bounds the pattern size explored.
pub fn frequent_subgraphs<E: SetEngine>(
    rt: &mut E,
    g: &SetGraph,
    min_support: u64,
    max_size: usize,
    limits: &SearchLimits,
) -> MiningRun<Vec<FrequentPattern>> {
    let labels: Vec<u32> = (0..g.num_vertices() as Vertex)
        .map(|v| g.csr().vertex_label(v).unwrap_or(0))
        .collect();
    let mut distinct_labels: Vec<u32> = labels.clone();
    distinct_labels.sort_unstable();
    distinct_labels.dedup();

    let mut tasks = Vec::new();
    let mut frequent: Vec<FrequentPattern> = Vec::new();

    // F1: single labelled vertices.
    rt.task_begin();
    let mut current_level: Vec<PatternGraph> = Vec::new();
    for &l in &distinct_labels {
        rt.host_ops(labels.len() as u64);
        let support = labels.iter().filter(|&&x| x == l).count() as u64;
        if support >= min_support {
            let p = PatternGraph::new(1, &[]).with_labels(vec![l]);
            frequent.push(FrequentPattern {
                pattern: p.clone(),
                support,
            });
            current_level.push(p);
        }
    }
    tasks.push(rt.task_end());

    let mut truncated = false;
    for _size in 2..=max_size {
        let mut next_level: Vec<PatternGraph> = Vec::new();
        for base in &current_level {
            for attach_to in 0..base.size() as Vertex {
                for &l in &distinct_labels {
                    // Candidate: base + one new vertex labelled l attached to
                    // attach_to.
                    let n = base.size();
                    let mut edges: Vec<(Vertex, Vertex)> = Vec::new();
                    for u in 0..n as Vertex {
                        for &v in base.neighbors(u) {
                            if u < v {
                                edges.push((u, v));
                            }
                        }
                    }
                    edges.push((attach_to, n as Vertex));
                    let mut cand_labels: Vec<u32> = (0..n as Vertex)
                        .map(|v| base.label(v).unwrap_or(0))
                        .collect();
                    cand_labels.push(l);
                    let candidate = PatternGraph::new(n + 1, &edges).with_labels(cand_labels);
                    // Count support with the SI kernel.
                    let run = subgraph_isomorphism_count(rt, g, &candidate, limits);
                    truncated |= run.truncated;
                    tasks.extend(run.tasks);
                    if run.result >= min_support && !next_level.contains(&candidate) {
                        frequent.push(FrequentPattern {
                            pattern: candidate.clone(),
                            support: run.result,
                        });
                        next_level.push(candidate);
                    }
                }
            }
        }
        if next_level.is_empty() {
            break;
        }
        current_level = next_level;
    }
    MiningRun::new(frequent, tasks, truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisa_core::{SetGraphConfig, SisaConfig, SisaRuntime};
    use sisa_graph::{generators, CsrGraph, LabeledGraph};

    fn setup(g: &CsrGraph) -> (SisaRuntime, SetGraph) {
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let sg = SetGraph::load(&mut rt, g, &SetGraphConfig::default());
        (rt, sg)
    }

    fn falling_factorial(d: u64, k: u64) -> u64 {
        (0..k).map(|i| d.saturating_sub(i)).product()
    }

    #[test]
    fn star_embeddings_match_the_closed_form() {
        let g = generators::erdos_renyi(40, 0.15, 8);
        let (mut rt, sg) = setup(&g);
        for k in 2..=4usize {
            let expected: u64 = (0..40u32)
                .map(|v| falling_factorial(g.degree(v) as u64, k as u64))
                .sum();
            let run = subgraph_isomorphism_count(
                &mut rt,
                &sg,
                &star_pattern(k),
                &SearchLimits::unlimited(),
            );
            assert_eq!(run.result, expected, "k = {k}");
        }
    }

    #[test]
    fn triangle_pattern_counts_six_embeddings_per_triangle() {
        let g = generators::complete(5);
        let (mut rt, sg) = setup(&g);
        let triangle = PatternGraph::new(3, &[(0, 1), (1, 2), (0, 2)]);
        let run = subgraph_isomorphism_count(&mut rt, &sg, &triangle, &SearchLimits::unlimited());
        // C(5,3) = 10 triangles, 3! = 6 embeddings each.
        assert_eq!(run.result, 60);
    }

    #[test]
    fn labels_restrict_the_matches() {
        // A triangle where vertices carry labels 0, 1, 2 plus a labelled tail.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)])
            .with_vertex_labels(vec![0, 1, 2, 1]);
        let (mut rt, sg) = setup(&g);
        let labelled_edge = PatternGraph::new(2, &[(0, 1)]).with_labels(vec![2, 1]);
        let run =
            subgraph_isomorphism_count(&mut rt, &sg, &labelled_edge, &SearchLimits::unlimited());
        // Edges (2,1) and (2,3) match pattern (label2 - label1): 2 embeddings.
        assert_eq!(run.result, 2);
        let unlabelled_edge = PatternGraph::new(2, &[(0, 1)]);
        let run =
            subgraph_isomorphism_count(&mut rt, &sg, &unlabelled_edge, &SearchLimits::unlimited());
        assert_eq!(run.result, 2 * g.num_edges() as u64);
    }

    #[test]
    fn labelled_search_is_cheaper_than_unlabelled() {
        // The effect reported in §9.2 "Labels": label constraints prune
        // recursion early, reducing total work.
        let base = generators::erdos_renyi(60, 0.12, 4);
        let labeled = LabeledGraph::with_random_vertex_labels(base.clone(), 3, 9).graph;
        let (mut rt_u, sg_u) = setup(&base);
        let (mut rt_l, sg_l) = setup(&labeled);
        let unl = subgraph_isomorphism_count(
            &mut rt_u,
            &sg_u,
            &star_pattern(4),
            &SearchLimits::unlimited(),
        );
        let lab_pattern = star_pattern(4).with_labels(vec![0, 1, 1, 2, 0]);
        let lab =
            subgraph_isomorphism_count(&mut rt_l, &sg_l, &lab_pattern, &SearchLimits::unlimited());
        assert!(lab.result < unl.result);
        assert!(lab.total_cycles() < unl.total_cycles());
    }

    #[test]
    fn budget_truncates_matching() {
        let g = generators::complete(10);
        let (mut rt, sg) = setup(&g);
        let run =
            subgraph_isomorphism_count(&mut rt, &sg, &star_pattern(3), &SearchLimits::patterns(50));
        assert!(run.truncated);
        assert!(run.result <= 60);
    }

    #[test]
    fn matching_order_starts_at_the_hub_and_stays_connected() {
        let p = star_pattern(4);
        let order = p.matching_order();
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), 5);
        assert_eq!(p.size(), 5);
        assert_eq!(p.num_edges(), 4);
    }

    #[test]
    fn frequent_subgraph_mining_finds_frequent_labelled_edges() {
        // A graph whose edges overwhelmingly connect label 0 to label 1.
        let mut edges = Vec::new();
        for i in 0..20u32 {
            edges.push((i, 20 + i));
        }
        edges.push((0, 1)); // one 0-0 edge
        let labels: Vec<u32> = (0..40).map(|v| if v < 20 { 0 } else { 1 }).collect();
        let g = CsrGraph::from_edges(40, &edges).with_vertex_labels(labels);
        let (mut rt, sg) = setup(&g);
        let run = frequent_subgraphs(&mut rt, &sg, 10, 2, &SearchLimits::unlimited());
        // Frequent size-1 patterns: label 0 (20 vertices) and label 1 (20).
        let singles: Vec<_> = run
            .result
            .iter()
            .filter(|p| p.pattern.size() == 1)
            .collect();
        assert_eq!(singles.len(), 2);
        // The 0-1 edge is frequent (20 edges ≥ 10 embeddings in each
        // direction); the 0-0 edge (support 2) is not.
        let pairs: Vec<_> = run
            .result
            .iter()
            .filter(|p| p.pattern.size() == 2)
            .collect();
        assert!(!pairs.is_empty());
        assert!(pairs.iter().all(|p| p.support >= 10));
        assert!(pairs.iter().any(|p| {
            let l: Vec<_> = (0..2u32).filter_map(|v| p.pattern.label(v)).collect();
            l.contains(&0) && l.contains(&1)
        }));
    }
}
