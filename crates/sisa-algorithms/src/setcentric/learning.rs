//! Set-centric graph learning: vertex similarity, link prediction (with the
//! accuracy-testing scheme) and Jarvis–Patrick clustering (paper §5.2).

use crate::limits::SearchLimits;
use crate::{MiningRun, Vertex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sisa_core::{SetEngine, SetGraph, SetGraphConfig};
use sisa_graph::{CsrGraph, GraphBuilder};

/// The vertex-similarity measures of Algorithm 9.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SimilarityMeasure {
    /// `|A ∩ B| / |A ∪ B|`.
    Jaccard,
    /// `|A ∩ B| / min(|A|, |B|)`.
    Overlap,
    /// `|A ∩ B|`.
    CommonNeighbors,
    /// `|A ∪ B|`.
    TotalNeighbors,
    /// `Σ_{w ∈ A ∩ B} 1 / log |N(w)|`.
    AdamicAdar,
    /// `Σ_{w ∈ A ∩ B} 1 / |N(w)|`.
    ResourceAllocation,
    /// `|A| · |B|`.
    PreferentialAttachment,
}

impl SimilarityMeasure {
    /// All measures, in the order the paper lists them.
    pub const ALL: [SimilarityMeasure; 7] = [
        Self::Jaccard,
        Self::Overlap,
        Self::CommonNeighbors,
        Self::TotalNeighbors,
        Self::AdamicAdar,
        Self::ResourceAllocation,
        Self::PreferentialAttachment,
    ];

    /// Short name used in reports (`cl-jac`, `cl-ovr`, `cl-tot`, ...).
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            Self::Jaccard => "jac",
            Self::Overlap => "ovr",
            Self::CommonNeighbors => "cn",
            Self::TotalNeighbors => "tot",
            Self::AdamicAdar => "aa",
            Self::ResourceAllocation => "ra",
            Self::PreferentialAttachment => "pa",
        }
    }
}

/// Computes the similarity of the neighbourhoods of `u` and `v` using SISA
/// set operations (Algorithm 9).
pub fn pairwise_similarity<E: SetEngine>(
    rt: &mut E,
    g: &SetGraph,
    u: Vertex,
    v: Vertex,
    measure: SimilarityMeasure,
) -> f64 {
    let nu = g.neighborhood(u);
    let nv = g.neighborhood(v);
    match measure {
        SimilarityMeasure::Jaccard => {
            let inter = rt.intersect_count(nu, nv) as f64;
            let union = rt.union_count(nu, nv) as f64;
            if union == 0.0 {
                0.0
            } else {
                inter / union
            }
        }
        SimilarityMeasure::Overlap => {
            let inter = rt.intersect_count(nu, nv) as f64;
            let min = rt.cardinality(nu).min(rt.cardinality(nv)) as f64;
            if min == 0.0 {
                0.0
            } else {
                inter / min
            }
        }
        SimilarityMeasure::CommonNeighbors => rt.intersect_count(nu, nv) as f64,
        SimilarityMeasure::TotalNeighbors => rt.union_count(nu, nv) as f64,
        SimilarityMeasure::AdamicAdar | SimilarityMeasure::ResourceAllocation => {
            let common = rt.intersect(nu, nv);
            let members = rt.members(common);
            rt.delete(common);
            members
                .into_iter()
                .map(|w| {
                    let d = g.degree(w) as f64;
                    match measure {
                        SimilarityMeasure::AdamicAdar => {
                            if d > 1.0 {
                                1.0 / d.ln()
                            } else {
                                0.0
                            }
                        }
                        _ => {
                            if d > 0.0 {
                                1.0 / d
                            } else {
                                0.0
                            }
                        }
                    }
                })
                .sum()
        }
        SimilarityMeasure::PreferentialAttachment => {
            (rt.cardinality(nu) * rt.cardinality(nv)) as f64
        }
    }
}

/// Jarvis–Patrick clustering (Algorithm 11): an edge `{u, v}` joins the
/// clustering `C` when the similarity of `N(u)` and `N(v)` exceeds `tau`.
///
/// Returns the selected edges.
pub fn jarvis_patrick_clustering<E: SetEngine>(
    rt: &mut E,
    g: &SetGraph,
    measure: SimilarityMeasure,
    tau: f64,
    limits: &SearchLimits,
) -> MiningRun<Vec<(Vertex, Vertex)>> {
    let mut budget = limits.budget();
    let mut tasks = Vec::new();
    let mut clusters = Vec::new();
    'outer: for u in 0..g.num_vertices() as Vertex {
        rt.task_begin();
        for &v in g.neighbors(u) {
            if v <= u {
                continue;
            }
            rt.host_ops(2);
            let s = pairwise_similarity(rt, g, u, v, measure);
            if s > tau {
                clusters.push((u, v));
                if !budget.found(1) {
                    tasks.push(rt.task_end());
                    break 'outer;
                }
            }
        }
        tasks.push(rt.task_end());
    }
    MiningRun::new(clusters, tasks, budget.exhausted())
}

/// The outcome of the link-prediction accuracy test (Algorithm 10).
#[derive(Clone, Debug, PartialEq)]
pub struct LinkPredictionOutcome {
    /// Number of removed edges that appear among the top predictions
    /// (`eff = |E_predict ∩ E_rndm|`).
    pub correctly_predicted: usize,
    /// Number of edges that were removed (`|E_rndm|`).
    pub removed_edges: usize,
    /// Number of predictions made (`|E_predict|`).
    pub predictions: usize,
}

impl LinkPredictionOutcome {
    /// `eff / |E_rndm|`: the fraction of removed edges recovered.
    #[must_use]
    pub fn recall(&self) -> f64 {
        if self.removed_edges == 0 {
            0.0
        } else {
            self.correctly_predicted as f64 / self.removed_edges as f64
        }
    }
}

/// Tests the accuracy of a link-prediction similarity measure
/// (Algorithm 10): remove a random fraction of the edges, score candidate
/// vertex pairs on the sparsified graph, take the top-`|E_rndm|` pairs and
/// count how many removed edges they recover.
///
/// Candidate pairs are restricted to vertices at distance two in the
/// sparsified graph (non-adjacent pairs with at least one common neighbour);
/// pairs without common neighbours score zero under every neighbourhood-based
/// measure, so this restriction does not change the outcome while keeping the
/// candidate set near-linear.
pub fn link_prediction_accuracy<E: SetEngine>(
    rt: &mut E,
    g: &CsrGraph,
    cfg: &SetGraphConfig,
    measure: SimilarityMeasure,
    remove_fraction: f64,
    seed: u64,
) -> MiningRun<LinkPredictionOutcome> {
    assert!((0.0..1.0).contains(&remove_fraction));
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(Vertex, Vertex)> = g.edges().collect();
    let mut removed: Vec<(Vertex, Vertex)> = Vec::new();
    let mut kept: Vec<(Vertex, Vertex)> = Vec::new();
    for &e in &edges {
        if rng.random::<f64>() < remove_fraction {
            removed.push(e);
        } else {
            kept.push(e);
        }
    }
    let mut builder = GraphBuilder::new(g.num_vertices());
    builder.add_edges(kept.iter().copied());
    let sparse = builder.build();
    let sparse_sets = SetGraph::load(rt, &sparse, cfg);

    let removed_set: std::collections::HashSet<(Vertex, Vertex)> =
        removed.iter().copied().collect();

    // Candidate pairs: distance-two non-adjacent pairs.
    let mut candidates: Vec<(Vertex, Vertex)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for u in 0..sparse.num_vertices() as Vertex {
        for &w in sparse.neighbors(u) {
            for &v in sparse.neighbors(w) {
                if v > u && !sparse.has_edge(u, v) && seen.insert((u, v)) {
                    candidates.push((u, v));
                }
            }
        }
    }

    let mut tasks = Vec::new();
    let mut scored: Vec<((Vertex, Vertex), f64)> = Vec::with_capacity(candidates.len());
    for chunk in candidates.chunks(256.max(candidates.len() / 64).max(1)) {
        rt.task_begin();
        for &(u, v) in chunk {
            rt.host_ops(2);
            let s = pairwise_similarity(rt, &sparse_sets, u, v, measure);
            scored.push(((u, v), s));
        }
        tasks.push(rt.task_end());
    }

    // E_predict: the |E_rndm| highest-scoring candidates.
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let predictions = removed.len().min(scored.len());
    let correctly_predicted = scored[..predictions]
        .iter()
        .filter(|(pair, _)| removed_set.contains(pair))
        .count();

    MiningRun::new(
        LinkPredictionOutcome {
            correctly_predicted,
            removed_edges: removed.len(),
            predictions,
        },
        tasks,
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisa_core::{SisaConfig, SisaRuntime};
    use sisa_graph::generators;

    fn setup(g: &CsrGraph) -> (SisaRuntime, SetGraph) {
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let sg = SetGraph::load(&mut rt, g, &SetGraphConfig::default());
        (rt, sg)
    }

    #[test]
    fn similarity_measures_on_a_known_graph() {
        // N(0) = {1,2,3}, N(4) = {2,3,5}: intersection {2,3}, union {1,2,3,5}.
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (4, 2), (4, 3), (4, 5)]);
        let (mut rt, sg) = setup(&g);
        let jac = pairwise_similarity(&mut rt, &sg, 0, 4, SimilarityMeasure::Jaccard);
        assert!((jac - 0.5).abs() < 1e-9);
        let ovr = pairwise_similarity(&mut rt, &sg, 0, 4, SimilarityMeasure::Overlap);
        assert!((ovr - 2.0 / 3.0).abs() < 1e-9);
        let cn = pairwise_similarity(&mut rt, &sg, 0, 4, SimilarityMeasure::CommonNeighbors);
        assert_eq!(cn, 2.0);
        let tot = pairwise_similarity(&mut rt, &sg, 0, 4, SimilarityMeasure::TotalNeighbors);
        assert_eq!(tot, 4.0);
        let pa = pairwise_similarity(
            &mut rt,
            &sg,
            0,
            4,
            SimilarityMeasure::PreferentialAttachment,
        );
        assert_eq!(pa, 9.0);
        // Common neighbours 2 and 3 both have degree 2: AA = 2/ln 2, RA = 1.
        let aa = pairwise_similarity(&mut rt, &sg, 0, 4, SimilarityMeasure::AdamicAdar);
        assert!((aa - 2.0 / (2.0f64).ln()).abs() < 1e-9);
        let ra = pairwise_similarity(&mut rt, &sg, 0, 4, SimilarityMeasure::ResourceAllocation);
        assert!((ra - 1.0).abs() < 1e-9);
    }

    #[test]
    fn similarity_of_disconnected_vertices_is_zero() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let (mut rt, sg) = setup(&g);
        for m in SimilarityMeasure::ALL {
            if m == SimilarityMeasure::PreferentialAttachment
                || m == SimilarityMeasure::TotalNeighbors
            {
                continue;
            }
            assert_eq!(pairwise_similarity(&mut rt, &sg, 0, 2, m), 0.0, "{m:?}");
        }
    }

    #[test]
    fn jarvis_patrick_keeps_intra_clique_edges() {
        // A 5-clique loosely connected to a 5-path.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        edges.extend([(4, 5), (5, 6), (6, 7), (7, 8)]);
        let g = CsrGraph::from_edges(9, &edges);
        let (mut rt, sg) = setup(&g);
        let run = jarvis_patrick_clustering(
            &mut rt,
            &sg,
            SimilarityMeasure::CommonNeighbors,
            1.5,
            &SearchLimits::unlimited(),
        );
        // Every clique edge has 3 common neighbours (> 1.5); path edges have 0.
        assert_eq!(run.result.len(), 10);
        assert!(run.result.iter().all(|&(u, v)| u < 5 && v < 5));
        assert!(!run.truncated);
        assert_eq!(run.tasks.len(), 9);
    }

    #[test]
    fn clustering_respects_the_pattern_budget() {
        let g = generators::complete(20);
        let (mut rt, sg) = setup(&g);
        let limited = jarvis_patrick_clustering(
            &mut rt,
            &sg,
            SimilarityMeasure::CommonNeighbors,
            0.5,
            &SearchLimits::patterns(10),
        );
        assert!(limited.truncated);
        assert!(limited.result.len() <= 10);
    }

    #[test]
    fn link_prediction_recovers_edges_of_a_dense_community_graph() {
        let (g, _) = generators::planted_cliques(
            &generators::PlantedCliqueConfig {
                num_vertices: 120,
                num_cliques: 8,
                min_clique_size: 8,
                max_clique_size: 12,
                background_edges: 50,
                overlap: 0.1,
            },
            5,
        );
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let run = link_prediction_accuracy(
            &mut rt,
            &g,
            &SetGraphConfig::default(),
            SimilarityMeasure::Jaccard,
            0.1,
            42,
        );
        let outcome = &run.result;
        assert!(outcome.removed_edges > 0);
        assert_eq!(
            outcome.predictions.min(outcome.removed_edges),
            outcome.predictions
        );
        // Dense overlapping cliques make removed edges highly predictable:
        // expect far better recall than random guessing.
        assert!(
            outcome.recall() > 0.2,
            "recall {} with {}/{} recovered",
            outcome.recall(),
            outcome.correctly_predicted,
            outcome.removed_edges
        );
        assert!(!run.tasks.is_empty());
    }

    #[test]
    fn measure_names_are_unique() {
        let mut names: Vec<&str> = SimilarityMeasure::ALL
            .iter()
            .map(|m| m.short_name())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SimilarityMeasure::ALL.len());
    }
}
