//! Paradigm-level baselines (paper §9.2, "Comparison to Other Paradigms").
//!
//! SISA is compared not only against hand-tuned algorithms but against the
//! *paradigms* underlying general-purpose mining systems:
//!
//! * [`neighborhood_expansion_cliques`] — Peregrine/GRAMER-style pattern
//!   matching by neighbourhood expansion: partial embeddings are extended one
//!   vertex at a time from the neighbourhood of the last matched vertex and
//!   validated with per-edge adjacency checks. Generic, but it re-validates
//!   every edge of the pattern and materialises candidate lists, which is why
//!   the paper reports it 10–100× slower than tuned algorithms.
//! * [`neighborhood_expansion_maximal_cliques`] — the paper notes Peregrine
//!   has no native maximal-clique support and must iterate over possible
//!   clique sizes; this baseline does exactly that.
//! * [`relational_join_cliques`] — RStream/TrieJax-style relational algebra:
//!   k-cliques are produced by repeatedly joining the edge relation and
//!   filtering, materialising the (large) intermediate relations.
//!
//! All three run on the CPU cost model.

use crate::baseline::engine::CpuEngine;
use crate::limits::SearchLimits;
use crate::{MiningRun, Vertex};
use sisa_graph::CsrGraph;
use sisa_pim::CpuConfig;

/// k-clique counting by generic neighbourhood expansion (Peregrine-style).
pub fn neighborhood_expansion_cliques(
    oriented: &CsrGraph,
    k: usize,
    cfg: &CpuConfig,
    threads: usize,
    limits: &SearchLimits,
) -> MiningRun<u64> {
    assert!(k >= 2);
    let mut engine = CpuEngine::new(oriented, cfg, threads);
    let mut budget = limits.budget();
    let mut tasks = Vec::new();
    let mut count = 0u64;

    for v in 0..oriented.num_vertices() as Vertex {
        if budget.exhausted() {
            break;
        }
        engine.task_begin();
        // Partial embeddings are explicit vertex lists, extended breadth-first
        // (the framework materialises every level).
        let mut embeddings: Vec<Vec<Vertex>> = vec![vec![v]];
        for _level in 1..k {
            let mut next: Vec<Vec<Vertex>> = Vec::new();
            for emb in &embeddings {
                engine.stream_scratch(emb.len());
                let last = *emb.last().expect("embedding is non-empty");
                let candidates: Vec<Vertex> = engine.stream_neighbors(last).to_vec();
                for c in candidates {
                    // Generic pattern validation: check the candidate against
                    // *every* previously matched vertex with an edge probe.
                    engine.scalar(emb.len() as u64);
                    let ok = emb.iter().all(|&u| engine.binary_search_edge(u, c));
                    if ok {
                        let mut e = emb.clone();
                        e.push(c);
                        engine.write_scratch(e.len());
                        next.push(e);
                    }
                }
            }
            embeddings = next;
            if embeddings.is_empty() {
                break;
            }
        }
        let found = embeddings.len() as u64;
        count += found;
        if found > 0 {
            budget.found(found);
        }
        tasks.push(engine.task_end());
    }
    MiningRun::new(count, tasks, budget.exhausted())
}

/// Maximal-clique counting via neighbourhood expansion: iterate over clique
/// sizes (as the paper had to do with Peregrine) and keep the cliques that
/// cannot be extended.
pub fn neighborhood_expansion_maximal_cliques(
    g: &CsrGraph,
    oriented: &CsrGraph,
    max_size: usize,
    cfg: &CpuConfig,
    threads: usize,
    limits: &SearchLimits,
) -> MiningRun<u64> {
    let mut engine = CpuEngine::new(g, cfg, threads);
    let mut enum_engine = CpuEngine::new(oriented, cfg, threads);
    let mut budget = limits.budget();
    let mut tasks = Vec::new();
    let mut maximal = 0u64;

    for k in 1..=max_size {
        if budget.exhausted() {
            break;
        }
        // Enumerate k-cliques on the oriented graph (each clique appears
        // exactly once) and test maximality on the undirected graph by trying
        // to extend each with every vertex.
        enum_engine.task_begin();
        let cliques = enumerate_cliques(&mut enum_engine, oriented, k, &mut budget);
        tasks.push(enum_engine.task_end());
        engine.task_begin();
        for clique in &cliques {
            engine.scalar(clique.len() as u64);
            let extendable = (0..g.num_vertices() as Vertex).any(|w| {
                if clique.contains(&w) {
                    return false;
                }
                clique.iter().all(|&u| {
                    engine.scalar(1);
                    engine.binary_search_edge(u, w)
                })
            });
            if !extendable {
                maximal += 1;
            }
        }
        tasks.push(engine.task_end());
    }
    MiningRun::new(maximal, tasks, budget.exhausted())
}

fn enumerate_cliques(
    engine: &mut CpuEngine<'_>,
    oriented: &CsrGraph,
    k: usize,
    budget: &mut crate::limits::PatternBudget,
) -> Vec<Vec<Vertex>> {
    debug_assert!(std::ptr::eq(engine.graph(), oriented));
    let mut result: Vec<Vec<Vertex>> = Vec::new();
    for v in 0..oriented.num_vertices() as Vertex {
        if budget.exhausted() {
            break;
        }
        let mut embeddings: Vec<Vec<Vertex>> = vec![vec![v]];
        for _ in 1..k {
            let mut next = Vec::new();
            for emb in &embeddings {
                let last = *emb.last().expect("non-empty");
                for &c in engine.stream_neighbors(last) {
                    engine.scalar(emb.len() as u64);
                    if emb.iter().all(|&u| engine.binary_search_edge(u, c)) {
                        let mut e = emb.clone();
                        e.push(c);
                        next.push(e);
                    }
                }
            }
            embeddings = next;
        }
        for e in embeddings {
            result.push(e);
            if !budget.found(1) {
                return result;
            }
        }
    }
    result
}

/// k-clique counting via repeated relational joins (RStream-style): the
/// candidate relation of (i+1)-vertex tuples is produced by joining the
/// i-tuple relation with the edge relation, then filtering for full
/// connectivity.
pub fn relational_join_cliques(
    oriented: &CsrGraph,
    k: usize,
    cfg: &CpuConfig,
    threads: usize,
    limits: &SearchLimits,
) -> MiningRun<u64> {
    assert!(k >= 2);
    let mut engine = CpuEngine::new(oriented, cfg, threads);
    let mut budget = limits.budget();
    let mut tasks = Vec::new();

    // Relation R2 = the (oriented) edge relation.
    engine.task_begin();
    let mut relation: Vec<Vec<Vertex>> = Vec::new();
    for u in 0..oriented.num_vertices() as Vertex {
        for &v in engine.stream_neighbors(u) {
            relation.push(vec![u, v]);
        }
    }
    engine.write_scratch(relation.len() * 2);
    tasks.push(engine.task_end());

    for level in 3..=k {
        if budget.exhausted() {
            break;
        }
        engine.task_begin();
        let mut next: Vec<Vec<Vertex>> = Vec::new();
        // Join on the last attribute: tuple ⨝ E extends each tuple by the
        // out-neighbours of its last vertex, then a selection keeps only the
        // tuples whose new vertex closes every edge (clique condition).
        for tuple in &relation {
            engine.stream_scratch(tuple.len());
            let last = *tuple.last().expect("non-empty tuple");
            for &c in engine.stream_neighbors(last) {
                engine.scalar(tuple.len() as u64);
                if tuple.iter().all(|&u| engine.binary_search_edge(u, c)) {
                    let mut t = tuple.clone();
                    t.push(c);
                    engine.write_scratch(t.len());
                    next.push(t);
                }
            }
        }
        relation = next;
        if level == k && !relation.is_empty() {
            budget.found(relation.len() as u64);
        }
        tasks.push(engine.task_end());
    }
    MiningRun::new(relation.len() as u64, tasks, budget.exhausted())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisa_graph::orientation::degeneracy_order;
    use sisa_graph::{generators, properties};

    #[test]
    fn paradigm_baselines_count_cliques_correctly() {
        let g = generators::erdos_renyi(40, 0.2, 6);
        let oriented = degeneracy_order(&g).orient(&g);
        let expected = properties::brute_force_k_clique_count(&g, 3);
        let ne = neighborhood_expansion_cliques(
            &oriented,
            3,
            &CpuConfig::default(),
            1,
            &SearchLimits::unlimited(),
        );
        let rj = relational_join_cliques(
            &oriented,
            3,
            &CpuConfig::default(),
            1,
            &SearchLimits::unlimited(),
        );
        assert_eq!(ne.result, expected);
        assert_eq!(rj.result, expected);
    }

    #[test]
    fn maximal_clique_paradigm_baseline_matches_brute_force_count() {
        let g = generators::erdos_renyi(14, 0.4, 9);
        let oriented = degeneracy_order(&g).orient(&g);
        let expected = properties::brute_force_maximal_cliques(&g).len() as u64;
        let run = neighborhood_expansion_maximal_cliques(
            &g,
            &oriented,
            14,
            &CpuConfig::default(),
            1,
            &SearchLimits::unlimited(),
        );
        assert_eq!(run.result, expected);
    }

    #[test]
    fn paradigm_baselines_are_slower_than_tuned_baselines() {
        use crate::baseline::{k_clique_count_baseline, BaselineMode};
        let g = generators::erdos_renyi(60, 0.25, 3);
        let oriented = degeneracy_order(&g).orient(&g);
        let limits = SearchLimits::unlimited();
        let tuned = k_clique_count_baseline(
            &oriented,
            4,
            BaselineMode::SetBased,
            &CpuConfig::default(),
            1,
            &limits,
        );
        let ne = neighborhood_expansion_cliques(&oriented, 4, &CpuConfig::default(), 1, &limits);
        let rj = relational_join_cliques(&oriented, 4, &CpuConfig::default(), 1, &limits);
        assert_eq!(tuned.result, ne.result);
        assert_eq!(tuned.result, rj.result);
        assert!(ne.total_cycles() > tuned.total_cycles());
        assert!(rj.total_cycles() > tuned.total_cycles());
    }
}
