//! The CPU execution engine shared by all software baselines.
//!
//! [`CpuEngine`] wraps a simulated CPU hardware thread (`sisa-pim`) together
//! with a synthetic address map of the CSR arrays, so baseline algorithms can
//! both *compute real results* (reading the actual CSR) and *charge realistic
//! cycles* (every read touches the cache hierarchy at the address the CSR
//! layout implies).

use crate::Vertex;
use sisa_core::TaskRecord;
use sisa_graph::CsrGraph;
use sisa_pim::{AddressSpace, CpuConfig, CpuThread};

/// A baseline CPU execution engine bound to one CSR graph.
#[derive(Clone, Debug)]
pub struct CpuEngine<'g> {
    graph: &'g CsrGraph,
    thread: CpuThread,
    offsets_base: u64,
    targets_base: u64,
    scratch_base: u64,
    /// Per-vertex start offsets into the targets array (mirrors CSR offsets).
    starts: Vec<u64>,
}

impl<'g> CpuEngine<'g> {
    /// Scalar operations charged per element advanced in a merge loop: one
    /// compare, one increment and the amortised cost of the data-dependent
    /// branch that scalar sorted-set intersection is known for (≈1.5 cycles
    /// per element at the modelled IPC).
    pub const MERGE_OPS_PER_ELEMENT: u64 = 6;

    /// Scalar operations charged per binary-search level (compare plus a
    /// hard-to-predict branch).
    pub const PROBE_OPS_PER_LEVEL: u64 = 3;

    /// Creates an engine for `graph` with the given CPU configuration; the
    /// cache hierarchy assumes `threads` cores share the L3.
    #[must_use]
    pub fn new(graph: &'g CsrGraph, cfg: &CpuConfig, threads: usize) -> Self {
        let mut space = AddressSpace::new();
        let n = graph.num_vertices();
        let offsets_base = space.alloc_array(n + 1, 8);
        let targets_base = space.alloc_array(graph.total_stored_arcs(), 4);
        let scratch_base = space.alloc(16 * 1024 * 1024);
        let mut starts = Vec::with_capacity(n);
        let mut acc = 0u64;
        for v in 0..n as Vertex {
            starts.push(acc);
            acc += graph.degree(v) as u64;
        }
        Self {
            graph,
            thread: CpuThread::new(cfg, threads),
            offsets_base,
            targets_base,
            scratch_base,
            starts,
        }
    }

    /// The graph this engine reads.
    #[must_use]
    pub fn graph(&self) -> &CsrGraph {
        self.graph
    }

    /// Marks the start of a parallel work item.
    pub fn task_begin(&mut self) {
        self.thread.task_begin();
    }

    /// Ends the current work item, returning its cost.
    pub fn task_end(&mut self) -> TaskRecord {
        TaskRecord::from(self.thread.task_end())
    }

    /// Charges `n` scalar operations.
    pub fn scalar(&mut self, n: u64) {
        self.thread.scalar_ops(n);
    }

    /// Reads the offsets entry of `v` (one 8-byte access).
    pub fn read_offset(&mut self, v: Vertex) {
        self.thread.access(self.offsets_base + u64::from(v) * 8);
    }

    /// Streams the neighbourhood of `v` and returns it (charging a sequential
    /// scan of `degree(v)` 4-byte target entries).
    pub fn stream_neighbors(&mut self, v: Vertex) -> &'g [Vertex] {
        self.read_offset(v);
        let deg = self.graph.degree(v) as u64;
        let base = self.targets_base + self.starts[v as usize] * 4;
        self.thread.stream(base, deg * 4);
        self.graph.neighbors(v)
    }

    /// Returns the neighbourhood without charging a full scan (used when the
    /// algorithm only walks a prefix; callers charge what they touch).
    #[must_use]
    pub fn peek_neighbors(&self, v: Vertex) -> &'g [Vertex] {
        self.graph.neighbors(v)
    }

    /// Checks whether the edge `u → v` exists via binary search over `N(u)`
    /// (the `_non-set` adjacency-check idiom), charging `log₂ d(u)` dependent
    /// random accesses.
    pub fn binary_search_edge(&mut self, u: Vertex, v: Vertex) -> bool {
        self.read_offset(u);
        let deg = self.graph.degree(u);
        let base = self.targets_base + self.starts[u as usize] * 4;
        let mut lo = 0usize;
        let mut hi = deg;
        let nbrs = self.graph.neighbors(u);
        let mut found = false;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            self.thread.random_access(base + mid as u64 * 4);
            self.scalar(Self::PROBE_OPS_PER_LEVEL);
            match nbrs[mid].cmp(&v) {
                std::cmp::Ordering::Equal => {
                    found = true;
                    break;
                }
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        found
    }

    /// Counts `|N(u) ∩ N(v)|` with a merge over both sorted neighbourhoods
    /// (the `_set-based` idiom): both neighbourhoods are streamed and one
    /// compare is charged per merge step.
    pub fn merge_intersect_count(&mut self, u: Vertex, v: Vertex) -> usize {
        let nu = self.stream_neighbors(u);
        let nv = self.stream_neighbors(v);
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        self.scalar(Self::MERGE_OPS_PER_ELEMENT * (i + j) as u64);
        count
    }

    /// Materialises `N(u) ∩ N(v)` with a merge (set-based idiom), charging the
    /// streams, the compares and the write-out of the result to scratch.
    pub fn merge_intersect(&mut self, u: Vertex, v: Vertex) -> Vec<Vertex> {
        let nu = self.stream_neighbors(u);
        let nv = self.stream_neighbors(v);
        let out = sisa_sets::ops::intersect_merge_slices(nu, nv);
        self.scalar(Self::MERGE_OPS_PER_ELEMENT * (nu.len() + nv.len()) as u64);
        self.write_scratch(out.len());
        out
    }

    /// Intersects a sorted candidate list with `N(v)` by merging (set-based).
    pub fn merge_intersect_with(&mut self, candidates: &[Vertex], v: Vertex) -> Vec<Vertex> {
        self.stream_scratch(candidates.len());
        let nv = self.stream_neighbors(v);
        let out = sisa_sets::ops::intersect_merge_slices(candidates, nv);
        self.scalar(Self::MERGE_OPS_PER_ELEMENT * (candidates.len() + nv.len()) as u64);
        self.write_scratch(out.len());
        out
    }

    /// Counts `|N(u) ∩ N(v)|` by iterating the smaller neighbourhood and
    /// binary-searching the larger (the `_non-set` probing idiom).
    pub fn probe_intersect_count(&mut self, u: Vertex, v: Vertex) -> usize {
        let (small, large) = if self.graph.degree(u) <= self.graph.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let members: Vec<Vertex> = self.stream_neighbors(small).to_vec();
        let mut count = 0usize;
        for w in members {
            if self.binary_search_edge(large, w) {
                count += 1;
            }
        }
        count
    }

    /// Filters a candidate list against `N(v)` with per-element binary probes
    /// (non-set idiom).
    pub fn probe_filter(&mut self, candidates: &[Vertex], v: Vertex) -> Vec<Vertex> {
        self.stream_scratch(candidates.len());
        let mut out = Vec::with_capacity(candidates.len());
        for &c in candidates {
            if self.binary_search_edge(v, c) {
                out.push(c);
            }
        }
        self.write_scratch(out.len());
        out
    }

    /// Charges a sequential read of `elements` 4-byte scratch entries
    /// (intermediate candidate lists and frontiers live in scratch space).
    pub fn stream_scratch(&mut self, elements: usize) {
        self.thread.stream(self.scratch_base, elements as u64 * 4);
    }

    /// Charges a sequential write of `elements` 4-byte scratch entries.
    pub fn write_scratch(&mut self, elements: usize) {
        self.thread
            .stream(self.scratch_base + 8 * 1024 * 1024, elements as u64 * 4);
    }

    /// The total cost accumulated by this engine so far.
    #[must_use]
    pub fn total_cost(&self) -> TaskRecord {
        TaskRecord::from(self.thread.total_cost())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisa_graph::generators;

    fn engine(g: &CsrGraph) -> CpuEngine<'_> {
        CpuEngine::new(g, &CpuConfig::default(), 1)
    }

    #[test]
    fn merge_and_probe_intersections_agree_with_reference() {
        let g = generators::erdos_renyi(100, 0.1, 3);
        let mut e = engine(&g);
        for (u, v) in [(0u32, 1u32), (5, 9), (20, 40)] {
            let expected = sisa_sets::ops::intersect_merge_count(g.neighbors(u), g.neighbors(v));
            assert_eq!(e.merge_intersect_count(u, v), expected);
            assert_eq!(e.probe_intersect_count(u, v), expected);
            assert_eq!(e.merge_intersect(u, v).len(), expected);
        }
    }

    #[test]
    fn binary_search_edge_matches_has_edge() {
        let g = generators::erdos_renyi(80, 0.08, 7);
        let mut e = engine(&g);
        for u in 0..80u32 {
            for v in [0u32, 17, 42, 79] {
                assert_eq!(e.binary_search_edge(u, v), g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn streaming_charges_grow_with_degree() {
        let g = generators::star(1000);
        let mut e = engine(&g);
        e.task_begin();
        let _ = e.stream_neighbors(0); // hub: 999 neighbours
        let hub_cost = e.task_end();
        e.task_begin();
        let _ = e.stream_neighbors(1); // leaf: 1 neighbour
        let leaf_cost = e.task_end();
        assert!(hub_cost.cycles > leaf_cost.cycles * 5);
    }

    #[test]
    fn probing_costs_more_than_merging_for_similar_sized_neighbourhoods() {
        // Random probes defeat the cache/prefetch-friendliness of merging;
        // this is the architectural reason the set-based baselines win on
        // intersection-heavy kernels.
        let g = generators::near_complete(400, 0.5, 1);
        let mut e = engine(&g);
        e.task_begin();
        let _ = e.merge_intersect_count(0, 1);
        let merge_cost = e.task_end();
        e.task_begin();
        let _ = e.probe_intersect_count(0, 1);
        let probe_cost = e.task_end();
        assert!(probe_cost.cycles > merge_cost.cycles);
    }

    #[test]
    fn filter_helpers_match_reference() {
        let g = generators::erdos_renyi(60, 0.2, 11);
        let mut e = engine(&g);
        let candidates: Vec<Vertex> = (0..30u32).collect();
        let merged = e.merge_intersect_with(&candidates, 40);
        let probed = e.probe_filter(&candidates, 40);
        let expected: Vec<Vertex> = candidates
            .iter()
            .copied()
            .filter(|&c| g.has_edge(40, c))
            .collect();
        assert_eq!(merged, expected);
        assert_eq!(probed, expected);
    }

    #[test]
    fn task_records_capture_dram_traffic() {
        let g = generators::erdos_renyi(3000, 0.02, 5);
        let mut e = engine(&g);
        e.task_begin();
        for v in 0..200u32 {
            let _ = e.stream_neighbors(v);
        }
        let cost = e.task_end();
        assert!(cost.dram_bytes > 0);
        assert!(cost.cycles > cost.stall_cycles);
        assert!(e.total_cost().cycles >= cost.cycles);
    }
}
