//! Software baselines for the graph-learning workloads: Jarvis–Patrick
//! clustering driven by neighbourhood-similarity measures.

use super::engine::CpuEngine;
use super::BaselineMode;
use crate::limits::SearchLimits;
use crate::setcentric::SimilarityMeasure;
use crate::{MiningRun, Vertex};
use sisa_graph::CsrGraph;
use sisa_pim::CpuConfig;

/// Jarvis–Patrick clustering on the CPU baseline: an edge joins the clustering
/// when the similarity of its endpoints' neighbourhoods exceeds `tau`.
pub fn jarvis_patrick_baseline(
    g: &CsrGraph,
    measure: SimilarityMeasure,
    tau: f64,
    mode: BaselineMode,
    cfg: &CpuConfig,
    threads: usize,
    limits: &SearchLimits,
) -> MiningRun<Vec<(Vertex, Vertex)>> {
    let mut engine = CpuEngine::new(g, cfg, threads);
    let mut budget = limits.budget();
    let mut tasks = Vec::with_capacity(g.num_vertices());
    let mut clusters = Vec::new();
    'outer: for u in 0..g.num_vertices() as Vertex {
        engine.task_begin();
        let nbrs: Vec<Vertex> = engine.stream_neighbors(u).to_vec();
        for &v in &nbrs {
            if v <= u {
                continue;
            }
            engine.scalar(4);
            let inter = match mode {
                BaselineMode::SetBased => engine.merge_intersect_count(u, v),
                BaselineMode::NonSet => engine.probe_intersect_count(u, v),
            } as f64;
            let du = g.degree(u) as f64;
            let dv = g.degree(v) as f64;
            let union = du + dv - inter;
            let score = match measure {
                SimilarityMeasure::Jaccard => {
                    if union == 0.0 {
                        0.0
                    } else {
                        inter / union
                    }
                }
                SimilarityMeasure::Overlap => {
                    let min = du.min(dv);
                    if min == 0.0 {
                        0.0
                    } else {
                        inter / min
                    }
                }
                SimilarityMeasure::CommonNeighbors => inter,
                SimilarityMeasure::TotalNeighbors => union,
                SimilarityMeasure::PreferentialAttachment => du * dv,
                // The degree-weighted measures need the common neighbours
                // themselves; recompute them with the mode's idiom.
                SimilarityMeasure::AdamicAdar | SimilarityMeasure::ResourceAllocation => {
                    let common = match mode {
                        BaselineMode::SetBased => engine.merge_intersect(u, v),
                        BaselineMode::NonSet => {
                            let small: Vec<Vertex> = engine.stream_neighbors(u).to_vec();
                            engine.probe_filter(&small, v)
                        }
                    };
                    common
                        .into_iter()
                        .map(|w| {
                            let d = g.degree(w) as f64;
                            match measure {
                                SimilarityMeasure::AdamicAdar if d > 1.0 => 1.0 / d.ln(),
                                SimilarityMeasure::ResourceAllocation if d > 0.0 => 1.0 / d,
                                _ => 0.0,
                            }
                        })
                        .sum()
                }
            };
            if score > tau {
                clusters.push((u, v));
                if !budget.found(1) {
                    tasks.push(engine.task_end());
                    break 'outer;
                }
            }
        }
        tasks.push(engine.task_end());
    }
    MiningRun::new(clusters, tasks, budget.exhausted())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisa_graph::generators;

    #[test]
    fn baseline_clustering_matches_both_modes() {
        let g = generators::planted_cliques(
            &generators::PlantedCliqueConfig {
                num_vertices: 80,
                num_cliques: 6,
                min_clique_size: 5,
                max_clique_size: 7,
                background_edges: 60,
                overlap: 0.1,
            },
            12,
        )
        .0;
        let a = jarvis_patrick_baseline(
            &g,
            SimilarityMeasure::CommonNeighbors,
            2.0,
            BaselineMode::NonSet,
            &CpuConfig::default(),
            1,
            &SearchLimits::unlimited(),
        );
        let b = jarvis_patrick_baseline(
            &g,
            SimilarityMeasure::CommonNeighbors,
            2.0,
            BaselineMode::SetBased,
            &CpuConfig::default(),
            1,
            &SearchLimits::unlimited(),
        );
        assert_eq!(a.result, b.result);
        assert!(!a.result.is_empty());
    }

    #[test]
    fn jaccard_thresholding_keeps_dense_edges_only() {
        // 4-clique plus a pendant path.
        let g = CsrGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
            ],
        );
        let run = jarvis_patrick_baseline(
            &g,
            SimilarityMeasure::Jaccard,
            0.4,
            BaselineMode::SetBased,
            &CpuConfig::default(),
            1,
            &SearchLimits::unlimited(),
        );
        // Only the clique edges not involving vertex 3 clear the threshold:
        // vertex 3's extra path neighbour dilutes its Jaccard score to 0.4.
        assert_eq!(run.result, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn weighted_measures_run_in_both_modes() {
        let g = generators::erdos_renyi(60, 0.15, 3);
        for measure in [
            SimilarityMeasure::AdamicAdar,
            SimilarityMeasure::ResourceAllocation,
        ] {
            let a = jarvis_patrick_baseline(
                &g,
                measure,
                0.1,
                BaselineMode::NonSet,
                &CpuConfig::default(),
                1,
                &SearchLimits::unlimited(),
            );
            let b = jarvis_patrick_baseline(
                &g,
                measure,
                0.1,
                BaselineMode::SetBased,
                &CpuConfig::default(),
                1,
                &SearchLimits::unlimited(),
            );
            assert_eq!(a.result, b.result, "{measure:?}");
        }
    }
}
