//! Software baselines for clique mining: triangle counting (GAP-style node
//! iterator), k-clique listing (Danisch et al.'s edge-parallel scheme) and
//! k-clique-star counting, in both `_non-set` and `_set-based` flavours.

use super::engine::CpuEngine;
use super::BaselineMode;
use crate::limits::{PatternBudget, SearchLimits};
use crate::{MiningRun, Vertex};
use sisa_graph::CsrGraph;
use sisa_pim::CpuConfig;
use std::collections::HashSet;

/// Triangle counting over a degeneracy-oriented CSR graph.
pub fn triangle_count_baseline(
    oriented: &CsrGraph,
    mode: BaselineMode,
    cfg: &CpuConfig,
    threads: usize,
    limits: &SearchLimits,
) -> MiningRun<u64> {
    let mut engine = CpuEngine::new(oriented, cfg, threads);
    let mut budget = limits.budget();
    let mut tasks = Vec::with_capacity(oriented.num_vertices());
    let mut tc = 0u64;
    'outer: for v in 0..oriented.num_vertices() as Vertex {
        engine.task_begin();
        let nbrs: Vec<Vertex> = engine.stream_neighbors(v).to_vec();
        for &w in &nbrs {
            engine.scalar(2);
            let found = match mode {
                BaselineMode::SetBased => engine.merge_intersect_count(v, w),
                BaselineMode::NonSet => engine.probe_intersect_count(v, w),
            } as u64;
            tc += found;
            if found > 0 && !budget.found(found) {
                tasks.push(engine.task_end());
                break 'outer;
            }
        }
        tasks.push(engine.task_end());
    }
    MiningRun::new(tc, tasks, budget.exhausted())
}

/// Recursion-invariant state for one k-clique enumeration.
struct CliqueSearch<'a> {
    mode: BaselineMode,
    k: usize,
    budget: &'a mut PatternBudget,
    collect: Option<&'a mut Vec<Vec<Vertex>>>,
}

impl CliqueSearch<'_> {
    fn extend(
        &mut self,
        engine: &mut CpuEngine<'_>,
        candidates: &[Vertex],
        depth: usize,
        prefix: &mut Vec<Vertex>,
    ) -> u64 {
        if depth == self.k {
            let found = candidates.len() as u64;
            if let Some(out) = self.collect.as_deref_mut() {
                for &v in candidates {
                    let mut clique = prefix.clone();
                    clique.push(v);
                    clique.sort_unstable();
                    out.push(clique);
                }
            }
            if found > 0 {
                self.budget.found(found);
            }
            return found;
        }
        let mut total = 0u64;
        for &v in candidates {
            if self.budget.exhausted() {
                break;
            }
            engine.scalar(2);
            let next = match self.mode {
                BaselineMode::SetBased => engine.merge_intersect_with(candidates, v),
                BaselineMode::NonSet => engine.probe_filter(candidates, v),
            };
            if next.is_empty() {
                continue;
            }
            prefix.push(v);
            total += self.extend(engine, &next, depth + 1, prefix);
            prefix.pop();
        }
        total
    }
}

/// k-clique counting over a degeneracy-oriented CSR graph.
pub fn k_clique_count_baseline(
    oriented: &CsrGraph,
    k: usize,
    mode: BaselineMode,
    cfg: &CpuConfig,
    threads: usize,
    limits: &SearchLimits,
) -> MiningRun<u64> {
    assert!(k >= 2);
    let mut engine = CpuEngine::new(oriented, cfg, threads);
    let mut budget = limits.budget();
    let mut tasks = Vec::with_capacity(oriented.num_vertices());
    let mut total = 0u64;
    let mut search = CliqueSearch {
        mode,
        k,
        budget: &mut budget,
        collect: None,
    };
    for u in 0..oriented.num_vertices() as Vertex {
        if search.budget.exhausted() {
            break;
        }
        engine.task_begin();
        let c2: Vec<Vertex> = engine.stream_neighbors(u).to_vec();
        let mut prefix = vec![u];
        total += search.extend(&mut engine, &c2, 2, &mut prefix);
        tasks.push(engine.task_end());
    }
    MiningRun::new(total, tasks, budget.exhausted())
}

/// k-clique-star counting (the paper's Algorithm 5 strategy): list
/// (k+1)-cliques, then count the distinct k-cliques they contain.
pub fn k_clique_star_count_baseline(
    oriented: &CsrGraph,
    k: usize,
    mode: BaselineMode,
    cfg: &CpuConfig,
    threads: usize,
    limits: &SearchLimits,
) -> MiningRun<u64> {
    let mut engine = CpuEngine::new(oriented, cfg, threads);
    let mut budget = limits.budget();
    let mut tasks = Vec::new();
    let mut cliques: Vec<Vec<Vertex>> = Vec::new();
    let mut search = CliqueSearch {
        mode,
        k: k + 1,
        budget: &mut budget,
        collect: Some(&mut cliques),
    };
    for u in 0..oriented.num_vertices() as Vertex {
        if search.budget.exhausted() {
            break;
        }
        engine.task_begin();
        let c2: Vec<Vertex> = engine.stream_neighbors(u).to_vec();
        let mut prefix = vec![u];
        let _ = search.extend(&mut engine, &c2, 2, &mut prefix);
        tasks.push(engine.task_end());
    }
    // Attribute every (k+1)-clique to the k-cliques it contains.
    engine.task_begin();
    let mut cores: HashSet<Vec<Vertex>> = HashSet::new();
    for clique in &cliques {
        engine.scalar((clique.len() * clique.len()) as u64);
        engine.stream_scratch(clique.len());
        for i in 0..clique.len() {
            let mut key = clique.clone();
            key.remove(i);
            cores.insert(key);
        }
    }
    tasks.push(engine.task_end());
    MiningRun::new(cores.len() as u64, tasks, budget.exhausted())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisa_graph::orientation::degeneracy_order;
    use sisa_graph::{generators, properties};

    fn oriented(g: &CsrGraph) -> CsrGraph {
        degeneracy_order(g).orient(g)
    }

    #[test]
    fn both_modes_match_the_reference_triangle_count() {
        let g = generators::erdos_renyi(150, 0.06, 4);
        let o = oriented(&g);
        let expected = properties::triangle_count(&g);
        for mode in [BaselineMode::NonSet, BaselineMode::SetBased] {
            let run = triangle_count_baseline(
                &o,
                mode,
                &CpuConfig::default(),
                1,
                &SearchLimits::unlimited(),
            );
            assert_eq!(run.result, expected, "{mode:?}");
            assert!(!run.truncated);
        }
    }

    #[test]
    fn both_modes_match_brute_force_k_cliques() {
        let g = generators::planted_cliques(
            &generators::PlantedCliqueConfig {
                num_vertices: 50,
                num_cliques: 5,
                min_clique_size: 4,
                max_clique_size: 6,
                background_edges: 40,
                overlap: 0.2,
            },
            6,
        )
        .0;
        let o = oriented(&g);
        for k in 3..=5 {
            let expected = properties::brute_force_k_clique_count(&g, k);
            for mode in [BaselineMode::NonSet, BaselineMode::SetBased] {
                let run = k_clique_count_baseline(
                    &o,
                    k,
                    mode,
                    &CpuConfig::default(),
                    1,
                    &SearchLimits::unlimited(),
                );
                assert_eq!(run.result, expected, "k={k} {mode:?}");
            }
        }
    }

    #[test]
    fn set_based_is_cheaper_than_non_set_on_dense_graphs() {
        let g = generators::near_complete(120, 0.6, 9);
        let o = oriented(&g);
        let non_set = k_clique_count_baseline(
            &o,
            4,
            BaselineMode::NonSet,
            &CpuConfig::default(),
            1,
            &SearchLimits::patterns(20_000),
        );
        let set_based = k_clique_count_baseline(
            &o,
            4,
            BaselineMode::SetBased,
            &CpuConfig::default(),
            1,
            &SearchLimits::patterns(20_000),
        );
        assert_eq!(non_set.result, set_based.result);
        assert!(set_based.total_cycles() < non_set.total_cycles());
    }

    #[test]
    fn clique_star_counting_runs_and_truncates() {
        let g = generators::near_complete(40, 0.5, 2);
        let o = oriented(&g);
        let run = k_clique_star_count_baseline(
            &o,
            3,
            BaselineMode::SetBased,
            &CpuConfig::default(),
            1,
            &SearchLimits::patterns(500),
        );
        assert!(run.result > 0);
    }

    #[test]
    fn baseline_mode_suffixes() {
        assert_eq!(BaselineMode::NonSet.suffix(), "non-set");
        assert_eq!(BaselineMode::SetBased.suffix(), "set-based");
    }
}
