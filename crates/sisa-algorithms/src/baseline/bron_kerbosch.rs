//! Software baseline for maximal clique listing: Eppstein-style Bron–Kerbosch
//! with pivoting over the degeneracy ordering, in `_non-set` (adjacency
//! probing) and `_set-based` (sorted-array merging) flavours.

use super::engine::CpuEngine;
use super::BaselineMode;
use crate::limits::{PatternBudget, SearchLimits};
use crate::{MiningRun, Vertex};
use sisa_graph::orientation::DegeneracyOrdering;
use sisa_graph::CsrGraph;
use sisa_pim::CpuConfig;

/// Result of a baseline maximal-clique run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BaselineMaximalCliques {
    /// Number of maximal cliques found.
    pub count: u64,
    /// The cliques (sorted), when collection was requested.
    pub cliques: Vec<Vec<Vertex>>,
}

/// Runs the baseline Bron–Kerbosch over the undirected CSR graph.
pub fn maximal_cliques_baseline(
    g: &CsrGraph,
    ordering: &DegeneracyOrdering,
    mode: BaselineMode,
    cfg: &CpuConfig,
    threads: usize,
    limits: &SearchLimits,
    collect: bool,
) -> MiningRun<BaselineMaximalCliques> {
    let mut engine = CpuEngine::new(g, cfg, threads);
    let mut budget = limits.budget();
    let mut tasks = Vec::with_capacity(g.num_vertices());
    let mut result = BaselineMaximalCliques::default();

    for &v in &ordering.order {
        if budget.exhausted() {
            break;
        }
        engine.task_begin();
        let rank_v = ordering.rank[v as usize];
        let nbrs: Vec<Vertex> = engine.stream_neighbors(v).to_vec();
        let p: Vec<Vertex> = nbrs
            .iter()
            .copied()
            .filter(|&w| ordering.rank[w as usize] > rank_v)
            .collect();
        let x: Vec<Vertex> = nbrs
            .iter()
            .copied()
            .filter(|&w| ordering.rank[w as usize] < rank_v)
            .collect();
        engine.scalar(nbrs.len() as u64);
        let mut r = vec![v];
        bk_pivot(
            &mut engine,
            mode,
            &mut r,
            &p,
            &x,
            &mut budget,
            collect,
            &mut result,
        );
        tasks.push(engine.task_end());
    }
    if collect {
        result.cliques.sort();
    }
    MiningRun::new(result, tasks, budget.exhausted())
}

#[allow(clippy::too_many_arguments)]
fn bk_pivot(
    engine: &mut CpuEngine<'_>,
    mode: BaselineMode,
    r: &mut Vec<Vertex>,
    p: &[Vertex],
    x: &[Vertex],
    budget: &mut PatternBudget,
    collect: bool,
    out: &mut BaselineMaximalCliques,
) {
    if budget.exhausted() {
        return;
    }
    if p.is_empty() && x.is_empty() {
        out.count += 1;
        if collect {
            let mut clique = r.clone();
            clique.sort_unstable();
            out.cliques.push(clique);
        }
        budget.found(1);
        return;
    }
    if p.is_empty() {
        return;
    }

    // Pivot: u ∈ P ∪ X maximising |P ∩ N(u)|.
    let mut pivot = None;
    let mut best = 0usize;
    for &u in p.iter().chain(x.iter()) {
        engine.scalar(1);
        let common = match mode {
            BaselineMode::SetBased => engine.merge_intersect_with(p, u).len(),
            BaselineMode::NonSet => engine.probe_filter(p, u).len(),
        };
        if pivot.is_none() || common > best {
            best = common;
            pivot = Some(u);
        }
    }
    let pivot = pivot.expect("P non-empty");

    // Candidates = P \ N(pivot).
    let pivot_nbrs = engine.stream_neighbors(pivot);
    let candidates: Vec<Vertex> = sisa_sets::ops::difference_merge_slices(p, pivot_nbrs);
    engine.scalar((p.len() + pivot_nbrs.len()) as u64);
    engine.write_scratch(candidates.len());

    let mut p_live: Vec<Vertex> = p.to_vec();
    let mut x_live: Vec<Vertex> = x.to_vec();
    for q in candidates {
        if budget.exhausted() {
            break;
        }
        engine.scalar(4);
        let (p_next, x_next) = match mode {
            BaselineMode::SetBased => (
                engine.merge_intersect_with(&p_live, q),
                engine.merge_intersect_with(&x_live, q),
            ),
            BaselineMode::NonSet => (
                engine.probe_filter(&p_live, q),
                engine.probe_filter(&x_live, q),
            ),
        };
        r.push(q);
        bk_pivot(engine, mode, r, &p_next, &x_next, budget, collect, out);
        r.pop();
        // P = P \ {q}; X = X ∪ {q}.
        p_live.retain(|&w| w != q);
        let pos = x_live.binary_search(&q).unwrap_or_else(|e| e);
        x_live.insert(pos, q);
        engine.stream_scratch(p_live.len() + x_live.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisa_graph::orientation::degeneracy_order;
    use sisa_graph::{generators, properties};

    fn run(
        g: &CsrGraph,
        mode: BaselineMode,
        limits: &SearchLimits,
    ) -> MiningRun<BaselineMaximalCliques> {
        let ordering = degeneracy_order(g);
        maximal_cliques_baseline(g, &ordering, mode, &CpuConfig::default(), 1, limits, true)
    }

    #[test]
    fn both_modes_match_brute_force() {
        for seed in [3u64, 5] {
            let g = generators::erdos_renyi(16, 0.4, seed);
            let expected = properties::brute_force_maximal_cliques(&g);
            for mode in [BaselineMode::NonSet, BaselineMode::SetBased] {
                let r = run(&g, mode, &SearchLimits::unlimited());
                assert_eq!(r.result.cliques, expected, "{mode:?} seed {seed}");
                assert_eq!(r.result.count as usize, expected.len());
            }
        }
    }

    #[test]
    fn budget_truncates() {
        let g = generators::near_complete(36, 0.7, 8);
        let full = run(&g, BaselineMode::SetBased, &SearchLimits::unlimited());
        let limited = run(&g, BaselineMode::SetBased, &SearchLimits::patterns(10));
        assert!(limited.truncated);
        assert!(limited.result.count <= 11);
        assert!(limited.total_cycles() < full.total_cycles());
    }

    #[test]
    fn both_modes_agree_and_stay_within_a_small_factor() {
        // The paper observes that the set-based restructuring helps most for
        // complex algorithms like mc on large inputs, while on small,
        // cache-resident graphs the tuned non-set code can match or beat it
        // ("for certain simpler schemes ... the very tuned _non-set baseline
        // outperforms _set-based"). Either order is acceptable here; what must
        // hold is agreement on the result and costs of the same magnitude.
        let g = generators::near_complete(60, 0.5, 2);
        let non_set = run(&g, BaselineMode::NonSet, &SearchLimits::patterns(2_000));
        let set_based = run(&g, BaselineMode::SetBased, &SearchLimits::patterns(2_000));
        assert_eq!(non_set.result.count, set_based.result.count);
        assert!(set_based.total_cycles() < non_set.total_cycles() * 3);
        assert!(non_set.total_cycles() < set_based.total_cycles() * 3);
    }
}
