//! Software baseline for subgraph isomorphism on star patterns (the `si-ks`
//! workload): a VF2-style matcher whose candidate filtering uses either
//! per-element adjacency probes (`_non-set`) or sorted merges (`_set-based`).

use super::engine::CpuEngine;
use super::BaselineMode;
use crate::limits::{PatternBudget, SearchLimits};
use crate::setcentric::PatternGraph;
use crate::{MiningRun, Vertex};
use sisa_graph::CsrGraph;
use sisa_pim::CpuConfig;

/// Counts embeddings of `pattern` in `g` on the CPU baseline.
pub fn star_isomorphism_baseline(
    g: &CsrGraph,
    pattern: &PatternGraph,
    mode: BaselineMode,
    cfg: &CpuConfig,
    threads: usize,
    limits: &SearchLimits,
) -> MiningRun<u64> {
    if pattern.size() == 0 {
        return MiningRun::new(0, Vec::new(), false);
    }
    let order = pattern.matching_order();
    let mut engine = CpuEngine::new(g, cfg, threads);
    let mut budget = limits.budget();
    let mut tasks = Vec::new();
    let mut count = 0u64;

    for root in 0..g.num_vertices() as Vertex {
        if budget.exhausted() {
            break;
        }
        if !label_ok(g, root, pattern, order[0]) {
            continue;
        }
        engine.task_begin();
        let mut mapping: Vec<Option<Vertex>> = vec![None; pattern.size()];
        mapping[order[0] as usize] = Some(root);
        let mut used = vec![root];
        count += extend(
            &mut engine,
            g,
            pattern,
            mode,
            &order,
            1,
            &mut mapping,
            &mut used,
            &mut budget,
        );
        tasks.push(engine.task_end());
    }
    MiningRun::new(count, tasks, budget.exhausted())
}

fn label_ok(g: &CsrGraph, target: Vertex, pattern: &PatternGraph, pv: Vertex) -> bool {
    match pattern.label(pv) {
        None => true,
        Some(l) => g.vertex_label(target) == Some(l),
    }
}

#[allow(clippy::too_many_arguments)]
fn extend(
    engine: &mut CpuEngine<'_>,
    g: &CsrGraph,
    pattern: &PatternGraph,
    mode: BaselineMode,
    order: &[Vertex],
    depth: usize,
    mapping: &mut Vec<Option<Vertex>>,
    used: &mut Vec<Vertex>,
    budget: &mut PatternBudget,
) -> u64 {
    if depth == order.len() {
        budget.found(1);
        return 1;
    }
    if budget.exhausted() {
        return 0;
    }
    let pv = order[depth];
    let matched: Vec<Vertex> = pattern
        .neighbors(pv)
        .iter()
        .copied()
        .filter_map(|q| mapping[q as usize])
        .collect();
    let candidates: Vec<Vertex> = if matched.is_empty() {
        (0..g.num_vertices() as Vertex).collect()
    } else {
        let mut cand: Vec<Vertex> = engine.stream_neighbors(matched[0]).to_vec();
        for &t in &matched[1..] {
            engine.scalar(1);
            cand = match mode {
                BaselineMode::SetBased => engine.merge_intersect_with(&cand, t),
                BaselineMode::NonSet => engine.probe_filter(&cand, t),
            };
        }
        cand
    };

    let mut total = 0u64;
    for c in candidates {
        if budget.exhausted() {
            break;
        }
        engine.scalar(2);
        if used.contains(&c) || !label_ok(g, c, pattern, pv) {
            continue;
        }
        mapping[pv as usize] = Some(c);
        used.push(c);
        total += extend(
            engine,
            g,
            pattern,
            mode,
            order,
            depth + 1,
            mapping,
            used,
            budget,
        );
        used.pop();
        mapping[pv as usize] = None;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setcentric::star_pattern;
    use sisa_graph::{generators, LabeledGraph};

    #[test]
    fn star_counts_match_the_closed_form_in_both_modes() {
        let g = generators::erdos_renyi(40, 0.12, 5);
        let expected: u64 = (0..40u32)
            .map(|v| {
                let d = g.degree(v) as u64;
                d * d.saturating_sub(1) * d.saturating_sub(2)
            })
            .sum();
        for mode in [BaselineMode::NonSet, BaselineMode::SetBased] {
            let run = star_isomorphism_baseline(
                &g,
                &star_pattern(3),
                mode,
                &CpuConfig::default(),
                1,
                &SearchLimits::unlimited(),
            );
            assert_eq!(run.result, expected, "{mode:?}");
        }
    }

    #[test]
    fn labelled_matching_is_cheaper_and_smaller() {
        let g = LabeledGraph::with_random_vertex_labels(generators::erdos_renyi(50, 0.15, 2), 3, 4)
            .graph;
        let unlabelled = star_isomorphism_baseline(
            &g,
            &star_pattern(3),
            BaselineMode::SetBased,
            &CpuConfig::default(),
            1,
            &SearchLimits::unlimited(),
        );
        let labelled_pattern = star_pattern(3).with_labels(vec![0, 1, 2, 1]);
        let labelled = star_isomorphism_baseline(
            &g,
            &labelled_pattern,
            BaselineMode::SetBased,
            &CpuConfig::default(),
            1,
            &SearchLimits::unlimited(),
        );
        assert!(labelled.result < unlabelled.result);
        assert!(labelled.total_cycles() < unlabelled.total_cycles());
    }

    #[test]
    fn budget_truncates_the_match() {
        let g = generators::complete(12);
        let run = star_isomorphism_baseline(
            &g,
            &star_pattern(4),
            BaselineMode::NonSet,
            &CpuConfig::default(),
            1,
            &SearchLimits::patterns(100),
        );
        assert!(run.truncated);
    }
}
