//! Hand-tuned software baselines executed on the CPU cost model.
//!
//! The paper compares SISA against two classes of software baselines (§9.1):
//!
//! * **`_non-set`** — tuned CSR algorithms that do not restructure their work
//!   as set operations: connectivity is tested with per-element binary
//!   searches / adjacency probes inside nested loops.
//! * **`_set-based`** — the same algorithms restructured around software set
//!   operations (merge intersections over sorted neighbourhoods), i.e. the
//!   set-centric formulations *without* PIM acceleration.
//!
//! Both run on the out-of-order CPU model from `sisa-pim` (with optional
//! bandwidth scaling, matching the paper's fairness setup) and emit one
//! [`sisa_core::TaskRecord`] per outer-loop work item.

pub mod bron_kerbosch;
pub mod cliques;
pub mod engine;
pub mod learning;
pub mod subgraph_iso;

pub use bron_kerbosch::maximal_cliques_baseline;
pub use cliques::{k_clique_count_baseline, k_clique_star_count_baseline, triangle_count_baseline};
pub use engine::CpuEngine;
pub use learning::jarvis_patrick_baseline;
pub use subgraph_iso::star_isomorphism_baseline;

/// Which baseline scheme to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaselineMode {
    /// Tuned CSR algorithm without explicit set algebra (`_non-set`).
    NonSet,
    /// Software set-centric algorithm (`_set-based`).
    SetBased,
}

impl BaselineMode {
    /// The suffix the paper uses in its plots.
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            Self::NonSet => "non-set",
            Self::SetBased => "set-based",
        }
    }
}
