//! Backend-agnosticism tests: every set-centric algorithm must run generically
//! over [`SetEngine`] and produce the same answer on the simulated SISA
//! platform ([`SisaRuntime`]) and on the software CPU backend
//! ([`HostEngine`]) — the property that makes the benchmark harness's
//! engine-swapping comparisons meaningful.

use sisa_algorithms::setcentric::{
    approximate_degeneracy, bfs, four_clique_count, jarvis_patrick_clustering, k_clique_count,
    maximal_cliques, orient_by_degeneracy, star_pattern, subgraph_isomorphism_count,
    triangle_count, BfsMode, SimilarityMeasure,
};
use sisa_algorithms::SearchLimits;
use sisa_core::{
    FunctionalEngine, HostEngine, PartitionStrategy, SetEngine, SetGraph, SetGraphConfig,
    ShardedEngine, SisaConfig, SisaRuntime,
};
use sisa_graph::orientation::degeneracy_order;
use sisa_graph::{generators, CsrGraph};

fn test_graph() -> CsrGraph {
    generators::erdos_renyi(90, 0.08, 11)
}

#[test]
fn clique_kernels_agree_across_engines() {
    let g = test_graph();
    let limits = SearchLimits::unlimited();

    let mut sisa = SisaRuntime::with_defaults();
    let (sisa_oriented, _) = orient_by_degeneracy(&mut sisa, &g, &SetGraphConfig::default());
    let mut host = HostEngine::with_defaults();
    let (host_oriented, _) = orient_by_degeneracy(&mut host, &g, &SetGraphConfig::default());

    let tc_sisa = triangle_count(&mut sisa, &sisa_oriented, &limits);
    let tc_host = triangle_count(&mut host, &host_oriented, &limits);
    assert_eq!(tc_sisa.result, tc_host.result);
    assert!(tc_host.total_cycles() > 0);

    let kcc_sisa = k_clique_count(&mut sisa, &sisa_oriented, 4, &limits);
    let kcc_host = k_clique_count(&mut host, &host_oriented, 4, &limits);
    assert_eq!(kcc_sisa.result, kcc_host.result);

    let fc_sisa = four_clique_count(&mut sisa, &sisa_oriented, &limits);
    let fc_host = four_clique_count(&mut host, &host_oriented, &limits);
    assert_eq!(fc_sisa.result, fc_host.result);
    assert_eq!(fc_sisa.result, kcc_sisa.result);
}

#[test]
fn bron_kerbosch_agrees_across_engines() {
    let g = test_graph();
    let ordering = degeneracy_order(&g);
    let limits = SearchLimits::unlimited();

    let mut sisa = SisaRuntime::with_defaults();
    let sisa_sg = SetGraph::load(&mut sisa, &g, &SetGraphConfig::default());
    let mut host = HostEngine::with_defaults();
    let host_sg = SetGraph::load(&mut host, &g, &SetGraphConfig::default());

    let mc_sisa = maximal_cliques(&mut sisa, &sisa_sg, &ordering, &limits, true);
    let mc_host = maximal_cliques(&mut host, &host_sg, &ordering, &limits, true);
    assert_eq!(mc_sisa.result.cliques, mc_host.result.cliques);
    assert_eq!(mc_sisa.result.max_size, mc_host.result.max_size);
}

#[test]
fn traversal_kernels_agree_across_engines() {
    let g = test_graph();

    let mut sisa = SisaRuntime::with_defaults();
    let sisa_sg = SetGraph::load(&mut sisa, &g, &SetGraphConfig::default());
    let mut host = HostEngine::with_defaults();
    let host_sg = SetGraph::load(&mut host, &g, &SetGraphConfig::default());

    for mode in [BfsMode::TopDown, BfsMode::BottomUp] {
        let bfs_sisa = bfs(&mut sisa, &sisa_sg, 0, mode);
        let bfs_host = bfs(&mut host, &host_sg, 0, mode);
        assert_eq!(bfs_sisa.result, bfs_host.result, "{mode:?}");
    }

    let deg_sisa = approximate_degeneracy(&mut sisa, &sisa_sg, 0.5, &SearchLimits::unlimited());
    let deg_host = approximate_degeneracy(&mut host, &host_sg, 0.5, &SearchLimits::unlimited());
    assert_eq!(deg_sisa.result, deg_host.result);
}

#[test]
fn learning_and_matching_kernels_agree_across_engines() {
    let g = test_graph();
    let limits = SearchLimits::unlimited();

    let mut sisa = SisaRuntime::with_defaults();
    let sisa_sg = SetGraph::load(&mut sisa, &g, &SetGraphConfig::default());
    let mut host = HostEngine::with_defaults();
    let host_sg = SetGraph::load(&mut host, &g, &SetGraphConfig::default());

    let cl_sisa = jarvis_patrick_clustering(
        &mut sisa,
        &sisa_sg,
        SimilarityMeasure::Jaccard,
        0.2,
        &limits,
    );
    let cl_host = jarvis_patrick_clustering(
        &mut host,
        &host_sg,
        SimilarityMeasure::Jaccard,
        0.2,
        &limits,
    );
    assert_eq!(cl_sisa.result, cl_host.result);

    let si_sisa = subgraph_isomorphism_count(&mut sisa, &sisa_sg, &star_pattern(3), &limits);
    let si_host = subgraph_isomorphism_count(&mut host, &host_sg, &star_pattern(3), &limits);
    assert_eq!(si_sisa.result, si_host.result);
}

#[test]
fn algorithms_get_multi_cube_execution_for_free() {
    // The same generic algorithms run unchanged on a sharded multi-cube
    // engine and on the cost-free functional backend, and agree with the flat
    // SISA runtime on every result.
    let g = test_graph();
    let limits = SearchLimits::unlimited();
    let ordering = degeneracy_order(&g);

    let mut flat = SisaRuntime::with_defaults();
    let (flat_oriented, _) = orient_by_degeneracy(&mut flat, &g, &SetGraphConfig::default());
    let flat_sg = SetGraph::load(&mut flat, &g, &SetGraphConfig::default());
    let tc_flat = triangle_count(&mut flat, &flat_oriented, &limits);
    let kcc_flat = k_clique_count(&mut flat, &flat_oriented, 4, &limits);
    let mc_flat = maximal_cliques(&mut flat, &flat_sg, &ordering, &limits, false);

    let mut functional = FunctionalEngine::new();
    let (fn_oriented, _) = orient_by_degeneracy(&mut functional, &g, &SetGraphConfig::default());
    let tc_fn = triangle_count(&mut functional, &fn_oriented, &limits);
    assert_eq!(tc_fn.result, tc_flat.result);
    assert_eq!(tc_fn.total_cycles(), 0, "the functional engine is free");

    for strategy in PartitionStrategy::ALL {
        let mut sharded = ShardedEngine::sisa(4, strategy, SisaConfig::default());
        let (oriented, _) = orient_by_degeneracy(&mut sharded, &g, &SetGraphConfig::default());
        let sg = SetGraph::load(&mut sharded, &g, &SetGraphConfig::default());

        let tc = triangle_count(&mut sharded, &oriented, &limits);
        assert_eq!(tc.result, tc_flat.result, "{strategy:?}");
        let kcc = k_clique_count(&mut sharded, &oriented, 4, &limits);
        assert_eq!(kcc.result, kcc_flat.result, "{strategy:?}");
        let mc = maximal_cliques(&mut sharded, &sg, &ordering, &limits, false);
        assert_eq!(mc.result.count, mc_flat.result.count, "{strategy:?}");

        // A real multi-cube run moved operands across shards.
        assert!(sharded.traffic().cross_ops > 0, "{strategy:?}");
        let report = sharded.report();
        assert_eq!(report.shards, 4);
        assert!(report.imbalance() >= 1.0);
    }
}

#[test]
fn the_two_backends_price_the_same_run_differently() {
    // Same algorithm, same graph, same answer — but SISA's PIM cost models
    // and the CPU cache model must produce *different* cycle estimates, and
    // only CPU tasks carry stall/DRAM components.
    // Big enough that the CPU backend's working set spills out of L1 and
    // exposes memory stalls inside the measured tasks.
    let g = generators::erdos_renyi(1500, 0.04, 3);
    let limits = SearchLimits::unlimited();

    let mut sisa = SisaRuntime::with_defaults();
    let (sisa_oriented, _) = orient_by_degeneracy(&mut sisa, &g, &SetGraphConfig::default());
    sisa.reset_stats();
    let mut host = HostEngine::with_defaults();
    let (host_oriented, _) = orient_by_degeneracy(&mut host, &g, &SetGraphConfig::default());
    host.reset_stats();

    let tc_sisa = triangle_count(&mut sisa, &sisa_oriented, &limits);
    let tc_host = triangle_count(&mut host, &host_oriented, &limits);
    assert_eq!(tc_sisa.result, tc_host.result);
    assert_ne!(tc_sisa.total_cycles(), tc_host.total_cycles());
    assert!(tc_sisa.tasks.iter().all(|t| t.stall_cycles == 0));
    assert!(tc_host.tasks.iter().any(|t| t.stall_cycles > 0));
    assert_eq!(sisa.backend_name(), "sisa");
    assert_eq!(host.backend_name(), "cpu");
}
