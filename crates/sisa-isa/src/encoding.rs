//! RISC-V-compatible binary encoding of SISA instructions (Figure 5).
//!
//! SISA instructions are encoded in the RISC-V *custom* opcode space using the
//! RoCC-style R-format layout the paper shows in Figure 5:
//!
//! ```text
//!  31       25 24   20 19   15 14 13 12 11    7 6      0
//! +-----------+-------+-------+--+--+--+-------+--------+
//! |  funct7   |  rs2  |  rs1  |xd|xs1|xs2|  rd  | opcode |
//! +-----------+-------+-------+--+--+--+-------+--------+
//!      7          5       5    1  1  1     5        7
//! ```
//!
//! * `funct7` selects one of up to 128 SISA operations;
//! * `opcode` is fixed to the custom value `0x16` the paper chooses;
//! * `xd`, `xs1`, `xs2` are set when the corresponding register operands are
//!   used (SISA always uses all three, matching the paper's "set to 1 if SISA
//!   uses the register operands").

use crate::instruction::{Register, SisaInstruction};
use crate::opcode::SisaOpcode;

/// The 7-bit custom opcode value the paper assigns to SISA instructions
/// (§6.3.5: "the latter are set to 0x16 to represent the custom characteristic
/// of the instruction").
pub const CUSTOM_OPCODE: u32 = 0x16;

/// Errors arising while decoding a 32-bit word as a SISA instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The low 7 bits are not the SISA custom opcode.
    NotSisa {
        /// The opcode bits that were found instead.
        found: u32,
    },
    /// The `funct7` field does not name a defined SISA operation.
    UnknownFunct7 {
        /// The unrecognised `funct7` value.
        funct7: u8,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotSisa { found } => write!(
                f,
                "not a SISA instruction: opcode bits 0x{found:02x} != 0x{CUSTOM_OPCODE:02x}"
            ),
            Self::UnknownFunct7 { funct7 } => {
                write!(f, "unknown SISA funct7 value 0x{funct7:02x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes an instruction into its 32-bit machine word.
#[must_use]
pub fn encode(instr: &SisaInstruction) -> u32 {
    let funct7 = u32::from(instr.opcode.funct7());
    let rs2 = u32::from(instr.rs2.index());
    let rs1 = u32::from(instr.rs1.index());
    let rd = u32::from(instr.rd.index());
    // xd/xs1/xs2 = 1: SISA uses all register operands.
    (funct7 << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (1 << 14)
        | (1 << 13)
        | (1 << 12)
        | (rd << 7)
        | CUSTOM_OPCODE
}

/// Decodes a 32-bit machine word into a SISA instruction.
///
/// # Errors
///
/// Returns [`DecodeError::NotSisa`] when the opcode bits are not the SISA
/// custom opcode, and [`DecodeError::UnknownFunct7`] when `funct7` is not a
/// defined SISA operation.
pub fn decode(word: u32) -> Result<SisaInstruction, DecodeError> {
    let opcode_bits = word & 0x7F;
    if opcode_bits != CUSTOM_OPCODE {
        return Err(DecodeError::NotSisa { found: opcode_bits });
    }
    let funct7 = ((word >> 25) & 0x7F) as u8;
    let opcode = SisaOpcode::from_funct7(funct7).ok_or(DecodeError::UnknownFunct7 { funct7 })?;
    let rs2 = Register::new(((word >> 20) & 0x1F) as u8);
    let rs1 = Register::new(((word >> 15) & 0x1F) as u8);
    let rd = Register::new(((word >> 7) & 0x1F) as u8);
    Ok(SisaInstruction::new(opcode, rd, rs1, rs2))
}

/// Extracts only the field values of an encoded word (useful for debugging and
/// for the documentation tests that pin the exact bit layout).
#[must_use]
pub fn fields(word: u32) -> EncodedFields {
    EncodedFields {
        funct7: ((word >> 25) & 0x7F) as u8,
        rs2: ((word >> 20) & 0x1F) as u8,
        rs1: ((word >> 15) & 0x1F) as u8,
        xd: (word >> 14) & 1 == 1,
        xs1: (word >> 13) & 1 == 1,
        xs2: (word >> 12) & 1 == 1,
        rd: ((word >> 7) & 0x1F) as u8,
        opcode: word & 0x7F,
    }
}

/// The raw fields of an encoded SISA instruction word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EncodedFields {
    /// Operation selector.
    pub funct7: u8,
    /// Second source register index.
    pub rs2: u8,
    /// First source register index.
    pub rs1: u8,
    /// Destination-register-used flag.
    pub xd: bool,
    /// First-source-register-used flag.
    pub xs1: bool,
    /// Second-source-register-used flag.
    pub xs2: bool,
    /// Destination register index.
    pub rd: u8,
    /// The 7-bit major opcode.
    pub opcode: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SisaInstruction {
        SisaInstruction::new(
            SisaOpcode::IntersectAuto,
            Register::new(3),
            Register::new(1),
            Register::new(2),
        )
    }

    #[test]
    fn encoding_places_fields_where_figure5_says() {
        let word = encode(&sample());
        let f = fields(word);
        assert_eq!(f.opcode, CUSTOM_OPCODE);
        assert_eq!(f.funct7, 0x02);
        assert_eq!(f.rd, 3);
        assert_eq!(f.rs1, 1);
        assert_eq!(f.rs2, 2);
        assert!(f.xd && f.xs1 && f.xs2);
    }

    #[test]
    fn every_opcode_round_trips_through_all_register_corners() {
        for op in SisaOpcode::ALL {
            for &(rd, rs1, rs2) in &[(0u8, 0u8, 0u8), (31, 31, 31), (1, 2, 3), (30, 15, 7)] {
                let instr = SisaInstruction::new(
                    op,
                    Register::new(rd),
                    Register::new(rs1),
                    Register::new(rs2),
                );
                let decoded = decode(encode(&instr)).unwrap();
                assert_eq!(decoded, instr);
            }
        }
    }

    #[test]
    fn non_sisa_words_are_rejected() {
        // A standard RISC-V ADDI has opcode 0x13.
        let err = decode(0x0000_0013).unwrap_err();
        assert_eq!(err, DecodeError::NotSisa { found: 0x13 });
        assert!(err.to_string().contains("not a SISA instruction"));
    }

    #[test]
    fn unknown_funct7_is_rejected() {
        // Craft a word with the SISA opcode but an undefined funct7 (0x7F).
        let word = (0x7Fu32 << 25) | CUSTOM_OPCODE;
        let err = decode(word).unwrap_err();
        assert_eq!(err, DecodeError::UnknownFunct7 { funct7: 0x7F });
        assert!(err.to_string().contains("funct7"));
    }

    #[test]
    fn custom_opcode_is_the_papers_value() {
        assert_eq!(CUSTOM_OPCODE, 0x16);
    }
}
