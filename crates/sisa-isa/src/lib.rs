//! # sisa-isa
//!
//! The SISA instruction set: opcodes, instruction words, RISC-V-compatible
//! encoding and small instruction programs.
//!
//! The paper (§6.3.2, §6.3.5, Table 5, Figure 5) defines SISA as a family of
//! fewer than twenty custom instructions layered on the RISC-V custom opcode
//! space. Each instruction names a *variant* of a set operation — the
//! combination of the abstract operation (intersection, union, difference,
//! cardinality, membership, element insertion/removal, set lifecycle) with the
//! operand representations (sparse array or dense bitvector) and the set
//! algorithm (merge or galloping). "Auto" variants leave the algorithm choice
//! to the SISA Controller Unit at run time.
//!
//! This crate is deliberately free of any execution semantics: it defines the
//! vocabulary shared by the software layer (`sisa-core`, which plays the role
//! of the paper's thin C-style wrapper layer plus the SCU) and by anything
//! that wants to reason about SISA programs (the benchmark harness prints
//! per-opcode instruction histograms, for instance).
//!
//! ## Example
//!
//! ```
//! use sisa_isa::{Register, SisaInstruction, SisaOpcode};
//!
//! let instr = SisaInstruction::new(
//!     SisaOpcode::IntersectAuto,
//!     Register::new(3),
//!     Register::new(1),
//!     Register::new(2),
//! );
//! let word = instr.encode();
//! assert_eq!(SisaInstruction::decode(word).unwrap(), instr);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encoding;
pub mod instruction;
pub mod opcode;
pub mod program;
pub mod serde_impls;

pub use encoding::{DecodeError, CUSTOM_OPCODE};
pub use instruction::{Register, SisaInstruction};
pub use opcode::{OperandKind, SetAlgorithm, SetOperation, SisaOpcode};
pub use program::SisaProgram;

/// A logical SISA set identifier.
///
/// The paper identifies sets "with unique logical set IDs ... mapped by the
/// underlying SISA HW design to any used form of physical addresses" (§6.3.4).
/// Set IDs are handed out by set-creation instructions and used analogously to
/// pointers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetId(pub u32);

impl SetId {
    /// The raw identifier value.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for SetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_id_display_and_raw() {
        let id = SetId(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.to_string(), "s42");
        assert!(SetId(1) < SetId(2));
    }
}
