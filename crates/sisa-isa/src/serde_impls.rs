//! Serialization of ISA types through the vendored serde shim.
//!
//! The binary encoding (Figure 5) *is* the canonical serial form of an
//! instruction, so [`SisaInstruction`] serializes as its 32-bit machine word
//! and [`SisaProgram`] as the word sequence — a captured trace checked into a
//! fixture is literally a SISA binary image. [`SetId`] serializes as its raw
//! identifier. (The vendored `serde_derive` shim only handles named-field
//! structs, hence the manual impls.)

use crate::instruction::SisaInstruction;
use crate::program::SisaProgram;
use crate::SetId;
use serde::{Content, Deserialize, Error, Serialize};

impl Serialize for SetId {
    fn to_content(&self) -> Content {
        Content::U64(u64::from(self.0))
    }
}

impl Deserialize for SetId {
    fn from_content(content: &Content) -> Result<Self, Error> {
        u32::from_content(content).map(SetId)
    }
}

impl Serialize for SisaInstruction {
    fn to_content(&self) -> Content {
        Content::U64(u64::from(self.encode()))
    }
}

impl Deserialize for SisaInstruction {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let word = u32::from_content(content)?;
        SisaInstruction::decode(word)
            .map_err(|e| Error::custom(format!("invalid SISA instruction word {word:#010x}: {e}")))
    }
}

impl Serialize for SisaProgram {
    fn to_content(&self) -> Content {
        Content::Seq(
            self.encode()
                .into_iter()
                .map(|w| Content::U64(u64::from(w)))
                .collect(),
        )
    }
}

impl Deserialize for SisaProgram {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let words = Vec::<u32>::from_content(content)?;
        SisaProgram::decode(&words)
            .map_err(|(i, e)| Error::custom(format!("invalid instruction at index {i}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Register, SisaOpcode};

    #[test]
    fn set_id_round_trips() {
        let id = SetId(77);
        assert_eq!(SetId::from_content(&id.to_content()), Ok(id));
    }

    #[test]
    fn instruction_round_trips_as_its_machine_word() {
        let i = SisaInstruction::new(
            SisaOpcode::IntersectCountAuto,
            Register::new(5),
            Register::new(10),
            Register::new(11),
        );
        let content = i.to_content();
        assert_eq!(content, Content::U64(u64::from(i.encode())));
        assert_eq!(SisaInstruction::from_content(&content), Ok(i));
    }

    #[test]
    fn invalid_words_are_rejected() {
        // An ADDI is not a SISA instruction.
        assert!(SisaInstruction::from_content(&Content::U64(0x13)).is_err());
    }

    #[test]
    fn program_round_trips_through_json() {
        let mut p = SisaProgram::new();
        p.emit(SisaOpcode::CreateSet, 1, 0, 0)
            .emit(SisaOpcode::IntersectAuto, 3, 1, 2)
            .emit(SisaOpcode::DeleteSet, 0, 3, 0);
        let json = serde_json::to_string(&p).unwrap();
        let back: SisaProgram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
