//! SISA opcodes: the concrete instruction variants of Table 5 and §6.3.2.

/// The abstract set operation an instruction performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SetOperation {
    /// `A ∩ B`, materialising the result set.
    Intersection,
    /// `A ∪ B`, materialising the result set.
    Union,
    /// `A \ B`, materialising the result set.
    Difference,
    /// `|A ∩ B|` without materialising the intersection.
    IntersectionCount,
    /// `|A ∪ B|` without materialising the union.
    UnionCount,
    /// `|A \ B|` without materialising the difference.
    DifferenceCount,
    /// `|A|` (kept in metadata, `O(1)`).
    Cardinality,
    /// `x ∈ A`.
    Membership,
    /// `A ∪ {x}` in place.
    InsertElement,
    /// `A \ {x}` in place.
    RemoveElement,
    /// Set lifecycle: create a new set.
    Create,
    /// Set lifecycle: delete a set.
    Delete,
    /// Set lifecycle: clone a set.
    Clone,
}

/// The set algorithm a concrete instruction variant prescribes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SetAlgorithm {
    /// Stream both sorted inputs simultaneously (`O(|A| + |B|)`).
    Merge,
    /// Iterate the smaller input, binary-search the larger
    /// (`O(min log max)`).
    Galloping,
    /// Probe a dense bitvector per element of a sparse array.
    Probe,
    /// Bulk bitwise processing of two dense bitvectors (in-situ PIM).
    Bitwise,
    /// Single bit/element update or metadata lookup.
    Direct,
    /// Let the SISA Controller Unit pick the algorithm at run time using its
    /// performance models (§8.3).
    Auto,
}

/// The operand-representation combination an instruction variant expects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OperandKind {
    /// Both operands are sparse arrays.
    SparseSparse,
    /// A sparse array combined with a dense bitvector.
    SparseDense,
    /// Both operands are dense bitvectors.
    DenseDense,
    /// A set and a single vertex.
    SetElement,
    /// A single set (cardinality, clone, delete) or none (create).
    SetOnly,
    /// The SCU inspects the set metadata to determine the representations.
    Any,
}

/// A concrete SISA instruction opcode (the `funct7` field of the encoding).
///
/// Opcodes `0x00`–`0x06` match Table 5 verbatim; the remaining opcodes cover
/// the union/difference/cardinality/membership/lifecycle variants that §6.2
/// and §6.3.2 describe but do not tabulate. The total stays below the 128
/// values the 7-bit field allows and below the paper's "less than 20
/// instructions" plus a small number of counting variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SisaOpcode {
    /// `0x0`: SA ∩ SA via merging.
    IntersectMerge = 0x00,
    /// `0x1`: SA ∩ SA via galloping.
    IntersectGallop = 0x01,
    /// `0x2`: SA ∩ SA, SCU picks merge or galloping.
    IntersectAuto = 0x02,
    /// `0x3`: SA ∩ DB via probing.
    IntersectSaDb = 0x03,
    /// `0x4`: DB ∩ DB via bulk bitwise AND.
    IntersectDbDb = 0x04,
    /// `0x5`: `A ∪ {x}` — set a bit / insert an element.
    InsertElement = 0x05,
    /// `0x6`: `A \ {x}` — clear a bit / remove an element.
    RemoveElement = 0x06,

    /// SA ∪ SA via merging.
    UnionMerge = 0x10,
    /// SA ∪ DB.
    UnionSaDb = 0x11,
    /// DB ∪ DB via bulk bitwise OR.
    UnionDbDb = 0x12,
    /// Union, SCU picks the variant.
    UnionAuto = 0x13,

    /// SA \ SA via merging.
    DifferenceMerge = 0x18,
    /// SA \ SA via galloping.
    DifferenceGallop = 0x19,
    /// SA \ DB via probing.
    DifferenceSaDb = 0x1A,
    /// DB \ DB via bulk bitwise AND-NOT.
    DifferenceDbDb = 0x1B,
    /// Difference, SCU picks the variant.
    DifferenceAuto = 0x1C,

    /// `|A ∩ B|`, SCU picks the variant.
    IntersectCountAuto = 0x20,
    /// `|A ∪ B|`, SCU picks the variant.
    UnionCountAuto = 0x21,
    /// `|A \ B|`, SCU picks the variant.
    DifferenceCountAuto = 0x22,
    /// `|A|` from set metadata.
    Cardinality = 0x23,
    /// `x ∈ A`.
    Membership = 0x24,

    /// Create a new (empty or pre-sized) set; returns its set ID.
    CreateSet = 0x30,
    /// Delete a set and free its storage.
    DeleteSet = 0x31,
    /// Clone a set into a fresh set ID.
    CloneSet = 0x32,
}

impl SisaOpcode {
    /// Every defined opcode, in ascending `funct7` order.
    pub const ALL: [SisaOpcode; 24] = [
        Self::IntersectMerge,
        Self::IntersectGallop,
        Self::IntersectAuto,
        Self::IntersectSaDb,
        Self::IntersectDbDb,
        Self::InsertElement,
        Self::RemoveElement,
        Self::UnionMerge,
        Self::UnionSaDb,
        Self::UnionDbDb,
        Self::UnionAuto,
        Self::DifferenceMerge,
        Self::DifferenceGallop,
        Self::DifferenceSaDb,
        Self::DifferenceDbDb,
        Self::DifferenceAuto,
        Self::IntersectCountAuto,
        Self::UnionCountAuto,
        Self::DifferenceCountAuto,
        Self::Cardinality,
        Self::Membership,
        Self::CreateSet,
        Self::DeleteSet,
        Self::CloneSet,
    ];

    /// The 7-bit `funct7` value identifying this opcode in the encoding.
    #[must_use]
    pub fn funct7(self) -> u8 {
        self as u8
    }

    /// Looks up an opcode from its `funct7` value.
    #[must_use]
    pub fn from_funct7(value: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|op| op.funct7() == value)
    }

    /// The abstract set operation this opcode performs.
    #[must_use]
    pub fn operation(self) -> SetOperation {
        use SisaOpcode::*;
        match self {
            IntersectMerge | IntersectGallop | IntersectAuto | IntersectSaDb | IntersectDbDb => {
                SetOperation::Intersection
            }
            UnionMerge | UnionSaDb | UnionDbDb | UnionAuto => SetOperation::Union,
            DifferenceMerge | DifferenceGallop | DifferenceSaDb | DifferenceDbDb
            | DifferenceAuto => SetOperation::Difference,
            IntersectCountAuto => SetOperation::IntersectionCount,
            UnionCountAuto => SetOperation::UnionCount,
            DifferenceCountAuto => SetOperation::DifferenceCount,
            Cardinality => SetOperation::Cardinality,
            Membership => SetOperation::Membership,
            InsertElement => SetOperation::InsertElement,
            RemoveElement => SetOperation::RemoveElement,
            CreateSet => SetOperation::Create,
            DeleteSet => SetOperation::Delete,
            CloneSet => SetOperation::Clone,
        }
    }

    /// The set algorithm this opcode prescribes.
    #[must_use]
    pub fn algorithm(self) -> SetAlgorithm {
        use SisaOpcode::*;
        match self {
            IntersectMerge | UnionMerge | DifferenceMerge => SetAlgorithm::Merge,
            IntersectGallop | DifferenceGallop => SetAlgorithm::Galloping,
            IntersectSaDb | UnionSaDb | DifferenceSaDb => SetAlgorithm::Probe,
            IntersectDbDb | UnionDbDb | DifferenceDbDb => SetAlgorithm::Bitwise,
            IntersectAuto | UnionAuto | DifferenceAuto | IntersectCountAuto | UnionCountAuto
            | DifferenceCountAuto => SetAlgorithm::Auto,
            InsertElement | RemoveElement | Cardinality | Membership | CreateSet | DeleteSet
            | CloneSet => SetAlgorithm::Direct,
        }
    }

    /// The operand-representation combination this opcode expects.
    #[must_use]
    pub fn operands(self) -> OperandKind {
        use SisaOpcode::*;
        match self {
            IntersectMerge | IntersectGallop | UnionMerge | DifferenceMerge | DifferenceGallop => {
                OperandKind::SparseSparse
            }
            IntersectSaDb | UnionSaDb | DifferenceSaDb => OperandKind::SparseDense,
            IntersectDbDb | UnionDbDb | DifferenceDbDb => OperandKind::DenseDense,
            IntersectAuto | UnionAuto | DifferenceAuto | IntersectCountAuto | UnionCountAuto
            | DifferenceCountAuto => OperandKind::Any,
            InsertElement | RemoveElement | Membership => OperandKind::SetElement,
            Cardinality | CreateSet | DeleteSet | CloneSet => OperandKind::SetOnly,
        }
    }

    /// Whether the SCU is responsible for choosing the algorithm variant.
    #[must_use]
    pub fn is_auto(self) -> bool {
        self.algorithm() == SetAlgorithm::Auto
    }

    /// Whether the instruction only produces a scalar (count / boolean), i.e.
    /// never materialises a result set.
    #[must_use]
    pub fn is_scalar_result(self) -> bool {
        matches!(
            self.operation(),
            SetOperation::IntersectionCount
                | SetOperation::UnionCount
                | SetOperation::DifferenceCount
                | SetOperation::Cardinality
                | SetOperation::Membership
        )
    }

    /// The assembly mnemonic used by [`crate::SisaProgram::to_assembly`].
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use SisaOpcode::*;
        match self {
            IntersectMerge => "sisa.int.m",
            IntersectGallop => "sisa.int.g",
            IntersectAuto => "sisa.int",
            IntersectSaDb => "sisa.int.sd",
            IntersectDbDb => "sisa.int.dd",
            InsertElement => "sisa.ins",
            RemoveElement => "sisa.rem",
            UnionMerge => "sisa.uni.m",
            UnionSaDb => "sisa.uni.sd",
            UnionDbDb => "sisa.uni.dd",
            UnionAuto => "sisa.uni",
            DifferenceMerge => "sisa.dif.m",
            DifferenceGallop => "sisa.dif.g",
            DifferenceSaDb => "sisa.dif.sd",
            DifferenceDbDb => "sisa.dif.dd",
            DifferenceAuto => "sisa.dif",
            IntersectCountAuto => "sisa.intc",
            UnionCountAuto => "sisa.unic",
            DifferenceCountAuto => "sisa.difc",
            Cardinality => "sisa.card",
            Membership => "sisa.member",
            CreateSet => "sisa.new",
            DeleteSet => "sisa.del",
            CloneSet => "sisa.clone",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_opcodes_have_their_published_codes() {
        assert_eq!(SisaOpcode::IntersectMerge.funct7(), 0x0);
        assert_eq!(SisaOpcode::IntersectGallop.funct7(), 0x1);
        assert_eq!(SisaOpcode::IntersectAuto.funct7(), 0x2);
        assert_eq!(SisaOpcode::IntersectSaDb.funct7(), 0x3);
        assert_eq!(SisaOpcode::IntersectDbDb.funct7(), 0x4);
        assert_eq!(SisaOpcode::InsertElement.funct7(), 0x5);
        assert_eq!(SisaOpcode::RemoveElement.funct7(), 0x6);
    }

    #[test]
    fn funct7_round_trips_and_fits_in_seven_bits() {
        for op in SisaOpcode::ALL {
            assert!(op.funct7() < 128, "{op:?} exceeds the 7-bit field");
            assert_eq!(SisaOpcode::from_funct7(op.funct7()), Some(op));
        }
        assert_eq!(SisaOpcode::from_funct7(0x7F), None);
    }

    #[test]
    fn opcode_values_are_unique() {
        let mut values: Vec<u8> = SisaOpcode::ALL.iter().map(|op| op.funct7()).collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), SisaOpcode::ALL.len());
    }

    #[test]
    fn classification_is_consistent() {
        use SisaOpcode::*;
        assert_eq!(IntersectMerge.operation(), SetOperation::Intersection);
        assert_eq!(IntersectMerge.algorithm(), SetAlgorithm::Merge);
        assert_eq!(IntersectDbDb.algorithm(), SetAlgorithm::Bitwise);
        assert_eq!(IntersectDbDb.operands(), OperandKind::DenseDense);
        assert!(IntersectAuto.is_auto());
        assert!(!IntersectMerge.is_auto());
        assert!(IntersectCountAuto.is_scalar_result());
        assert!(Membership.is_scalar_result());
        assert!(!UnionMerge.is_scalar_result());
        assert_eq!(CreateSet.operation(), SetOperation::Create);
        assert_eq!(InsertElement.operands(), OperandKind::SetElement);
    }

    #[test]
    fn mnemonics_are_unique_and_prefixed() {
        let mut names: Vec<&str> = SisaOpcode::ALL.iter().map(|op| op.mnemonic()).collect();
        assert!(names.iter().all(|m| m.starts_with("sisa.")));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SisaOpcode::ALL.len());
    }

    #[test]
    fn instruction_count_stays_small() {
        // The paper: "The number of SISA instructions is less than 20, leaving
        // space for potential new variants" — we add counting/lifecycle
        // variants but stay far below the 128-opcode budget.
        assert!(SisaOpcode::ALL.len() <= 32);
    }
}
