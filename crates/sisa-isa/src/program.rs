//! Sequences of SISA instructions.
//!
//! A [`SisaProgram`] is the unit the benchmark harness and the runtime
//! statistics reason about: the dynamic stream of SISA instructions an
//! algorithm issued, with helpers to render assembly listings, encode to a
//! binary image and summarise per-opcode counts (the paper's instruction-mix
//! analyses).

use crate::instruction::{Register, SisaInstruction};
use crate::opcode::SisaOpcode;
use std::collections::BTreeMap;

/// An ordered sequence of SISA instructions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SisaProgram {
    instructions: Vec<SisaInstruction>,
}

impl SisaProgram {
    /// Creates an empty program.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: SisaInstruction) {
        self.instructions.push(instruction);
    }

    /// Appends an instruction built from its parts; returns `&mut self` for
    /// chaining.
    pub fn emit(&mut self, opcode: SisaOpcode, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.push(SisaInstruction::new(
            opcode,
            Register::new(rd),
            Register::new(rs1),
            Register::new(rs2),
        ));
        self
    }

    /// The instructions in program order.
    #[must_use]
    pub fn instructions(&self) -> &[SisaInstruction] {
        &self.instructions
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Encodes the whole program into 32-bit machine words.
    #[must_use]
    pub fn encode(&self) -> Vec<u32> {
        self.instructions
            .iter()
            .map(SisaInstruction::encode)
            .collect()
    }

    /// Decodes a program from 32-bit machine words.
    ///
    /// # Errors
    ///
    /// Fails on the first word that is not a valid SISA instruction, reporting
    /// its index.
    pub fn decode(words: &[u32]) -> Result<Self, (usize, crate::DecodeError)> {
        let mut program = Self::new();
        for (i, &w) in words.iter().enumerate() {
            program.push(SisaInstruction::decode(w).map_err(|e| (i, e))?);
        }
        Ok(program)
    }

    /// Renders the program as an assembly listing, one instruction per line.
    #[must_use]
    pub fn to_assembly(&self) -> String {
        self.instructions
            .iter()
            .map(SisaInstruction::to_assembly)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Per-opcode dynamic instruction counts (sorted by `funct7`).
    #[must_use]
    pub fn opcode_histogram(&self) -> BTreeMap<SisaOpcode, usize> {
        let mut hist: BTreeMap<u8, (SisaOpcode, usize)> = BTreeMap::new();
        for instr in &self.instructions {
            hist.entry(instr.opcode.funct7())
                .and_modify(|e| e.1 += 1)
                .or_insert((instr.opcode, 1));
        }
        hist.into_values().collect()
    }

    /// Per-opcode dynamic instruction counts keyed by assembly mnemonic
    /// (ready for JSON emission: mnemonics sort alphabetically and need no
    /// custom serializer).
    #[must_use]
    pub fn mnemonic_histogram(&self) -> BTreeMap<&'static str, usize> {
        self.opcode_histogram()
            .into_iter()
            .map(|(op, n)| (op.mnemonic(), n))
            .collect()
    }
}

// A program displays as its assembly listing.
impl std::fmt::Display for SisaProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_assembly())
    }
}

impl FromIterator<SisaInstruction> for SisaProgram {
    fn from_iter<T: IntoIterator<Item = SisaInstruction>>(iter: T) -> Self {
        Self {
            instructions: iter.into_iter().collect(),
        }
    }
}

// BTreeMap<SisaOpcode, _> needs an ordering; order opcodes by funct7.
impl PartialOrd for SisaOpcode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SisaOpcode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.funct7().cmp(&other.funct7())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> SisaProgram {
        let mut p = SisaProgram::new();
        p.emit(SisaOpcode::CreateSet, 1, 0, 0)
            .emit(SisaOpcode::IntersectAuto, 3, 1, 2)
            .emit(SisaOpcode::IntersectAuto, 4, 1, 3)
            .emit(SisaOpcode::IntersectCountAuto, 5, 3, 4)
            .emit(SisaOpcode::DeleteSet, 0, 3, 0);
        p
    }

    #[test]
    fn push_len_and_iteration() {
        let p = sample_program();
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert_eq!(p.instructions()[1].opcode, SisaOpcode::IntersectAuto);
        assert!(SisaProgram::new().is_empty());
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = sample_program();
        let words = p.encode();
        assert_eq!(words.len(), 5);
        let back = SisaProgram::decode(&words).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn decode_reports_failing_index() {
        let mut words = sample_program().encode();
        words[3] = 0x0000_0013; // an ADDI, not a SISA instruction
        let (idx, _err) = SisaProgram::decode(&words).unwrap_err();
        assert_eq!(idx, 3);
    }

    #[test]
    fn assembly_listing_has_one_line_per_instruction() {
        let asm = sample_program().to_assembly();
        assert_eq!(asm.lines().count(), 5);
        assert!(asm.lines().nth(1).unwrap().starts_with("sisa.int "));
    }

    #[test]
    fn histogram_counts_opcodes() {
        let hist = sample_program().opcode_histogram();
        assert_eq!(hist[&SisaOpcode::IntersectAuto], 2);
        assert_eq!(hist[&SisaOpcode::CreateSet], 1);
        assert_eq!(hist.values().sum::<usize>(), 5);
    }

    #[test]
    fn opcode_ordering_follows_funct7() {
        assert!(SisaOpcode::IntersectMerge < SisaOpcode::UnionMerge);
        assert!(SisaOpcode::CreateSet > SisaOpcode::Membership);
    }

    #[test]
    fn display_matches_assembly_and_mnemonic_histogram_counts() {
        let p = sample_program();
        assert_eq!(p.to_string(), p.to_assembly());
        let mix = p.mnemonic_histogram();
        assert_eq!(mix["sisa.int"], 2);
        assert_eq!(mix["sisa.new"], 1);
        assert_eq!(mix.values().sum::<usize>(), 5);
    }

    #[test]
    fn from_iterator_collects() {
        let instrs = vec![SisaInstruction::new(
            SisaOpcode::Cardinality,
            Register::new(1),
            Register::new(2),
            Register::ZERO,
        )];
        let p: SisaProgram = instrs.clone().into_iter().collect();
        assert_eq!(p.instructions(), instrs.as_slice());
    }
}
