//! SISA instruction words and register operands.

use crate::encoding;
use crate::opcode::SisaOpcode;

/// A RISC-V integer register index (x0–x31) used as a SISA operand.
///
/// In the paper's encoding (Figure 5), `rs1` and `rs2` name registers holding
/// the IDs of the input sets (or a vertex id for element operations) and `rd`
/// names the register receiving the output set ID or scalar result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Register(u8);

impl Register {
    /// The zero register `x0`.
    pub const ZERO: Register = Register(0);

    /// Creates a register operand.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32` (RISC-V has 32 integer registers).
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(index < 32, "register index {index} out of range (0..32)");
        Self(index)
    }

    /// The register index (0..32).
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }
}

impl std::fmt::Display for Register {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A single SISA instruction: an opcode plus destination and source registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SisaInstruction {
    /// The concrete operation variant.
    pub opcode: SisaOpcode,
    /// Destination register (output set ID or scalar result).
    pub rd: Register,
    /// First source register (first input set ID).
    pub rs1: Register,
    /// Second source register (second input set ID, or a vertex id for
    /// element operations).
    pub rs2: Register,
}

impl SisaInstruction {
    /// Creates an instruction.
    #[must_use]
    pub fn new(opcode: SisaOpcode, rd: Register, rs1: Register, rs2: Register) -> Self {
        Self {
            opcode,
            rd,
            rs1,
            rs2,
        }
    }

    /// Encodes the instruction into its 32-bit machine word (Figure 5).
    #[must_use]
    pub fn encode(&self) -> u32 {
        encoding::encode(self)
    }

    /// Decodes a 32-bit machine word into an instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::DecodeError`] if the word does not carry the SISA
    /// custom opcode or names an unknown `funct7` value.
    pub fn decode(word: u32) -> Result<Self, crate::DecodeError> {
        encoding::decode(word)
    }

    /// Renders the instruction in assembly syntax, e.g.
    /// `sisa.int x3, x1, x2`.
    #[must_use]
    pub fn to_assembly(&self) -> String {
        format!(
            "{} {}, {}, {}",
            self.opcode.mnemonic(),
            self.rd,
            self.rs1,
            self.rs2
        )
    }
}

impl std::fmt::Display for SisaInstruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_assembly())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_construction_and_display() {
        let r = Register::new(17);
        assert_eq!(r.index(), 17);
        assert_eq!(r.to_string(), "x17");
        assert_eq!(Register::ZERO.index(), 0);
        assert_eq!(Register::default(), Register::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_index_out_of_range_panics() {
        let _ = Register::new(32);
    }

    #[test]
    fn assembly_rendering() {
        let i = SisaInstruction::new(
            SisaOpcode::IntersectCountAuto,
            Register::new(5),
            Register::new(10),
            Register::new(11),
        );
        assert_eq!(i.to_assembly(), "sisa.intc x5, x10, x11");
        assert_eq!(i.to_string(), i.to_assembly());
    }

    #[test]
    fn encode_decode_round_trip_matches() {
        let i = SisaInstruction::new(
            SisaOpcode::UnionDbDb,
            Register::new(1),
            Register::new(2),
            Register::new(3),
        );
        assert_eq!(SisaInstruction::decode(i.encode()).unwrap(), i);
    }
}
