//! Property-based tests for set representations and set algebra.
//!
//! These check the invariants the SISA design depends on: every physical
//! representation and every algorithm variant must implement the *same*
//! abstract set algebra, because the SCU is free to pick any variant at run
//! time (§8.2).

use proptest::prelude::*;
use sisa_sets::{ops, DenseBitVector, RepresentationKind, SetRepr, SortedVertexArray, Vertex};
use std::collections::BTreeSet;

const UNIVERSE: usize = 512;

fn vertex_set() -> impl Strategy<Value = BTreeSet<Vertex>> {
    proptest::collection::btree_set(0u32..UNIVERSE as u32, 0..128)
}

/// The same abstract set in each of the three physical representations.
fn all_reprs(members: &BTreeSet<Vertex>) -> [SetRepr; 3] {
    [
        SetRepr::sorted_from(members.iter().copied()),
        SetRepr::sorted_from(members.iter().copied())
            .converted_to(RepresentationKind::UnsortedArray, UNIVERSE),
        SetRepr::dense_from(UNIVERSE, members.iter().copied()),
    ]
}

/// Asserts that a sparse result is a *sorted* array with strictly ascending
/// members (the invariant every downstream merge-based instruction relies on).
fn assert_sorted_sparse(result: &SetRepr) {
    assert_eq!(result.kind(), RepresentationKind::SortedArray);
    let members = result.to_sorted_array();
    assert!(
        members.as_slice().windows(2).all(|w| w[0] < w[1]),
        "sparse result must be strictly sorted: {:?}",
        members.as_slice()
    );
}

fn model_intersect(a: &BTreeSet<Vertex>, b: &BTreeSet<Vertex>) -> Vec<Vertex> {
    a.intersection(b).copied().collect()
}

fn model_union(a: &BTreeSet<Vertex>, b: &BTreeSet<Vertex>) -> Vec<Vertex> {
    a.union(b).copied().collect()
}

fn model_difference(a: &BTreeSet<Vertex>, b: &BTreeSet<Vertex>) -> Vec<Vertex> {
    a.difference(b).copied().collect()
}

proptest! {
    #[test]
    fn merge_and_galloping_intersection_match_model(a in vertex_set(), b in vertex_set()) {
        let av: Vec<Vertex> = a.iter().copied().collect();
        let bv: Vec<Vertex> = b.iter().copied().collect();
        let expected = model_intersect(&a, &b);
        prop_assert_eq!(ops::intersect_merge_slices(&av, &bv), expected.clone());
        prop_assert_eq!(ops::intersect_galloping_slices(&av, &bv), expected.clone());
        prop_assert_eq!(ops::intersect_merge_count(&av, &bv), expected.len());
        prop_assert_eq!(ops::intersect_galloping_count(&av, &bv), expected.len());
    }

    #[test]
    fn union_and_difference_match_model(a in vertex_set(), b in vertex_set()) {
        let av: Vec<Vertex> = a.iter().copied().collect();
        let bv: Vec<Vertex> = b.iter().copied().collect();
        prop_assert_eq!(ops::union_merge_slices(&av, &bv), model_union(&a, &b));
        prop_assert_eq!(ops::difference_merge_slices(&av, &bv), model_difference(&a, &b));
        prop_assert_eq!(ops::difference_galloping_slices(&av, &bv), model_difference(&a, &b));
        prop_assert_eq!(ops::union_merge_count(&av, &bv), model_union(&a, &b).len());
        prop_assert_eq!(ops::difference_merge_count(&av, &bv), model_difference(&a, &b).len());
    }

    #[test]
    fn dense_bitvector_ops_match_model(a in vertex_set(), b in vertex_set()) {
        let da = DenseBitVector::from_members(UNIVERSE, a.iter().copied());
        let db = DenseBitVector::from_members(UNIVERSE, b.iter().copied());
        prop_assert_eq!(da.and(&db).to_sorted_vec(), model_intersect(&a, &b));
        prop_assert_eq!(da.or(&db).to_sorted_vec(), model_union(&a, &b));
        prop_assert_eq!(da.and_not(&db).to_sorted_vec(), model_difference(&a, &b));
        prop_assert_eq!(da.and_count(&db), model_intersect(&a, &b).len());
        prop_assert_eq!(da.or_count(&db), model_union(&a, &b).len());
        prop_assert_eq!(da.len(), a.len());
    }

    #[test]
    fn mixed_representation_algebra_matches_model(a in vertex_set(), b in vertex_set()) {
        let sparse_a = SetRepr::sorted_from(a.iter().copied());
        let dense_b = SetRepr::dense_from(UNIVERSE, b.iter().copied());
        prop_assert_eq!(sparse_a.intersect(&dense_b).to_sorted_vec(), model_intersect(&a, &b));
        prop_assert_eq!(sparse_a.union(&dense_b).to_sorted_vec(), model_union(&a, &b));
        prop_assert_eq!(sparse_a.difference(&dense_b).to_sorted_vec(), model_difference(&a, &b));
        prop_assert_eq!(dense_b.difference(&sparse_a).to_sorted_vec(), model_difference(&b, &a));
    }

    #[test]
    fn intersection_is_commutative_and_bounded(a in vertex_set(), b in vertex_set()) {
        let sa = SetRepr::sorted_from(a.iter().copied());
        let sb = SetRepr::sorted_from(b.iter().copied());
        let ab = sa.intersect(&sb);
        let ba = sb.intersect(&sa);
        prop_assert_eq!(ab.to_sorted_vec(), ba.to_sorted_vec());
        prop_assert!(ab.len() <= sa.len().min(sb.len()));
        prop_assert_eq!(sa.union(&sb).len(), sa.len() + sb.len() - ab.len());
    }

    #[test]
    fn difference_and_intersection_partition_the_set(a in vertex_set(), b in vertex_set()) {
        // |A| = |A ∩ B| + |A \ B| — the identity SISA uses to avoid
        // materialising intermediate sets for cardinality instructions.
        let sa = SetRepr::sorted_from(a.iter().copied());
        let sb = SetRepr::sorted_from(b.iter().copied());
        prop_assert_eq!(sa.len(), sa.intersect_count(&sb) + sa.difference_count(&sb));
    }

    #[test]
    fn insert_then_remove_is_identity(a in vertex_set(), v in 0u32..UNIVERSE as u32) {
        let mut sorted = SortedVertexArray::from_unsorted(a.iter().copied().collect());
        let mut dense = DenseBitVector::from_members(UNIVERSE, a.iter().copied());
        let originally_present = a.contains(&v);
        let inserted_sorted = sorted.insert(v);
        let inserted_dense = dense.insert(v);
        prop_assert_eq!(inserted_sorted, !originally_present);
        prop_assert_eq!(inserted_dense, !originally_present);
        if !originally_present {
            prop_assert!(sorted.remove(v));
            prop_assert!(dense.remove(v));
        }
        let expected: Vec<Vertex> = a.iter().copied().collect();
        prop_assert_eq!(sorted.as_slice(), expected.as_slice());
        prop_assert_eq!(dense.to_sorted_vec(), expected);
    }

    #[test]
    fn intersect_representation_policy(a in vertex_set(), b in vertex_set()) {
        // §6.1 result-representation policy: DB ∩ DB stays dense; any
        // combination involving a sparse operand yields a sorted array.
        let expected = model_intersect(&a, &b);
        for ra in all_reprs(&a) {
            for rb in all_reprs(&b) {
                let result = ra.intersect(&rb);
                if ra.kind().is_dense() && rb.kind().is_dense() {
                    prop_assert_eq!(result.kind(), RepresentationKind::DenseBitvector);
                } else {
                    assert_sorted_sparse(&result);
                }
                prop_assert_eq!(result.to_sorted_vec(), expected.clone());
            }
        }
    }

    #[test]
    fn union_representation_policy(a in vertex_set(), b in vertex_set()) {
        // Unions can only grow, so any dense operand makes the result dense;
        // sparse ∪ sparse stays a sorted array.
        let expected = model_union(&a, &b);
        for ra in all_reprs(&a) {
            for rb in all_reprs(&b) {
                let result = ra.union(&rb);
                if ra.kind().is_dense() || rb.kind().is_dense() {
                    prop_assert_eq!(result.kind(), RepresentationKind::DenseBitvector);
                } else {
                    assert_sorted_sparse(&result);
                }
                prop_assert_eq!(result.to_sorted_vec(), expected.clone());
            }
        }
    }

    #[test]
    fn difference_representation_policy(a in vertex_set(), b in vertex_set()) {
        // A \ B keeps A's representation family (the result is a subset of
        // A), with unsorted A normalised to a sorted result.
        let expected = model_difference(&a, &b);
        for ra in all_reprs(&a) {
            for rb in all_reprs(&b) {
                let result = ra.difference(&rb);
                if ra.kind().is_dense() {
                    prop_assert_eq!(result.kind(), RepresentationKind::DenseBitvector);
                } else {
                    assert_sorted_sparse(&result);
                }
                prop_assert_eq!(result.to_sorted_vec(), expected.clone());
            }
        }
    }

    #[test]
    fn counting_variants_agree_with_materialized_results(a in vertex_set(), b in vertex_set()) {
        // The cardinality-only instructions (§6.2) must agree with the
        // materialising ones for every representation pairing — the SCU is
        // free to pick either form at run time.
        for ra in all_reprs(&a) {
            for rb in all_reprs(&b) {
                prop_assert_eq!(ra.intersect_count(&rb), ra.intersect(&rb).len());
                prop_assert_eq!(ra.union_count(&rb), ra.union(&rb).len());
                prop_assert_eq!(ra.difference_count(&rb), ra.difference(&rb).len());
            }
        }
    }

    #[test]
    fn de_morgan_for_dense_sets(a in vertex_set(), b in vertex_set()) {
        // (A ∪ B)' == A' ∩ B' within the fixed universe.
        let da = DenseBitVector::from_members(UNIVERSE, a.iter().copied());
        let db = DenseBitVector::from_members(UNIVERSE, b.iter().copied());
        let lhs = da.or(&db).not();
        let rhs = da.not().and(&db.not());
        prop_assert_eq!(lhs.to_sorted_vec(), rhs.to_sorted_vec());
    }
}
