//! Differential tests pinning the host-side fast paths — the word-parallel
//! `u64` kernels, the true galloping sparse kernels, and the size-ratio
//! dispatch policy in `SetRepr` — against naive scalar references.
//!
//! Inputs deliberately include the adversarial shapes that bit- and
//! search-kernels historically get wrong: empty operands, disjoint and
//! identical sets, single-element sets, and universes straddling a 64-bit
//! word boundary (63 / 64 / 65).

use proptest::prelude::*;
use sisa_sets::repr::{self, KernelPolicy};
use sisa_sets::{kernels, ops, DenseBitVector, RepresentationKind, SetRepr, Vertex};
use std::collections::BTreeSet;

/// Scalar one-word-at-a-time reference for the word-parallel kernels.
fn scalar_combine(a: &[u64], b: &[u64], f: impl Fn(u64, u64) -> u64) -> (Vec<u64>, u64) {
    assert_eq!(a.len(), b.len());
    let mut out = Vec::with_capacity(a.len());
    let mut ones = 0u64;
    for (&x, &y) in a.iter().zip(b) {
        let w = f(x, y);
        ones += u64::from(w.count_ones());
        out.push(w);
    }
    (out, ones)
}

type WordOp = (
    &'static str,
    fn(u64, u64) -> u64,
    fn(&[u64], &[u64], &mut Vec<u64>) -> u64,
    fn(&mut [u64], &[u64]) -> u64,
    fn(&[u64], &[u64]) -> u64,
);

fn word_ops() -> [WordOp; 4] {
    [
        (
            "and",
            |x, y| x & y,
            kernels::and_into,
            kernels::and_assign,
            kernels::and_count,
        ),
        (
            "or",
            |x, y| x | y,
            kernels::or_into,
            kernels::or_assign,
            kernels::or_count,
        ),
        (
            "and_not",
            |x, y| x & !y,
            kernels::and_not_into,
            kernels::and_not_assign,
            kernels::and_not_count,
        ),
        (
            "xor",
            |x, y| x ^ y,
            kernels::xor_into,
            kernels::xor_assign,
            kernels::xor_count,
        ),
    ]
}

fn model_intersect(a: &BTreeSet<Vertex>, b: &BTreeSet<Vertex>) -> Vec<Vertex> {
    a.intersection(b).copied().collect()
}

fn model_union(a: &BTreeSet<Vertex>, b: &BTreeSet<Vertex>) -> Vec<Vertex> {
    a.union(b).copied().collect()
}

fn model_difference(a: &BTreeSet<Vertex>, b: &BTreeSet<Vertex>) -> Vec<Vertex> {
    a.difference(b).copied().collect()
}

/// The same abstract set in each physical representation over `universe`.
fn all_reprs(members: &BTreeSet<Vertex>, universe: usize) -> [SetRepr; 3] {
    [
        SetRepr::sorted_from(members.iter().copied()),
        SetRepr::sorted_from(members.iter().copied())
            .converted_to(RepresentationKind::UnsortedArray, universe),
        SetRepr::dense_from(universe, members.iter().copied()),
    ]
}

proptest! {
    #[test]
    fn word_parallel_kernels_match_the_scalar_reference(
        a in proptest::collection::vec(any::<u64>(), 0..40),
        b in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        // Unequal draws are truncated to a common length; the lengths swept
        // (0..40) cross every unroll boundary of the 4-word inner loop.
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        for (name, f, into, assign, count) in word_ops() {
            let (expected, expected_ones) = scalar_combine(a, b, f);
            let mut out = Vec::new();
            let ones = into(a, b, &mut out);
            prop_assert_eq!(&out, &expected, "{}_into words", name);
            prop_assert_eq!(ones, expected_ones, "{}_into ones", name);
            let mut dst = a.to_vec();
            let ones = assign(&mut dst, b);
            prop_assert_eq!(&dst, &expected, "{}_assign words", name);
            prop_assert_eq!(ones, expected_ones, "{}_assign ones", name);
            prop_assert_eq!(count(a, b), expected_ones, "{}_count", name);
        }
        prop_assert_eq!(
            kernels::popcount(a),
            a.iter().map(|w| u64::from(w.count_ones())).sum::<u64>()
        );
    }

    #[test]
    fn dense_ops_match_the_model_across_word_boundary_universes(
        members_a in proptest::collection::btree_set(0u32..130, 0..80),
        members_b in proptest::collection::btree_set(0u32..130, 0..80),
    ) {
        for universe in [1usize, 63, 64, 65, 127, 128, 130] {
            let a: BTreeSet<Vertex> =
                members_a.iter().copied().filter(|&v| (v as usize) < universe).collect();
            let b: BTreeSet<Vertex> =
                members_b.iter().copied().filter(|&v| (v as usize) < universe).collect();
            let da = DenseBitVector::from_members(universe, a.iter().copied());
            let db = DenseBitVector::from_members(universe, b.iter().copied());
            prop_assert_eq!(da.and(&db).to_sorted_vec(), model_intersect(&a, &b));
            prop_assert_eq!(da.or(&db).to_sorted_vec(), model_union(&a, &b));
            prop_assert_eq!(da.and_not(&db).to_sorted_vec(), model_difference(&a, &b));
            let sym: Vec<Vertex> =
                a.symmetric_difference(&b).copied().collect();
            prop_assert_eq!(da.xor(&db).to_sorted_vec(), sym);
            prop_assert_eq!(da.and_count(&db), model_intersect(&a, &b).len());
            prop_assert_eq!(da.or_count(&db), model_union(&a, &b).len());
            prop_assert_eq!(da.and_not_count(&db), model_difference(&a, &b).len());
            // The fused in-place counts must agree with a full recount.
            let mut acc = da.clone();
            acc.and_assign(&db);
            prop_assert_eq!(acc.len(), acc.iter().count());
            let mut acc = da.clone();
            acc.or_assign(&db);
            prop_assert_eq!(acc.len(), acc.iter().count());
            let mut acc = da.clone();
            acc.and_not_assign(&db);
            prop_assert_eq!(acc.len(), acc.iter().count());
        }
    }

    #[test]
    fn galloping_matches_merge_on_skewed_draws(
        small in proptest::collection::btree_set(0u32..4096, 0..8),
        large in proptest::collection::btree_set(0u32..4096, 0..1024),
    ) {
        let sv: Vec<Vertex> = small.iter().copied().collect();
        let lv: Vec<Vertex> = large.iter().copied().collect();
        for (a, b) in [(&sv, &lv), (&lv, &sv)] {
            let merged = ops::intersect_merge_slices(a, b);
            prop_assert_eq!(ops::intersect_galloping_slices(a, b), merged.clone());
            prop_assert_eq!(ops::intersect_galloping_slices_reference(a, b), merged.clone());
            prop_assert_eq!(ops::intersect_galloping_count(a, b), merged.len());
            let diff = ops::difference_merge_slices(a, b);
            prop_assert_eq!(ops::difference_galloping_slices(a, b), diff.clone());
            prop_assert_eq!(ops::difference_galloping_slices_reference(a, b), diff);
        }
    }

    #[test]
    fn dispatch_policy_is_semantically_invisible(
        members_a in proptest::collection::btree_set(0u32..512, 0..128),
        members_b in proptest::collection::btree_set(0u32..512, 0..128),
    ) {
        // Whatever host kernel the size-ratio policy picks, and whether or
        // not operand staging goes through the arena, results must match the
        // Reference policy (the seed's behaviour) and the abstract model.
        let universe = 512;
        for ra in all_reprs(&members_a, universe) {
            for rb in all_reprs(&members_b, universe) {
                repr::set_kernel_policy(KernelPolicy::Optimized);
                let opt = (
                    ra.intersect(&rb).to_sorted_vec(),
                    ra.union(&rb).to_sorted_vec(),
                    ra.difference(&rb).to_sorted_vec(),
                    ra.intersect_count(&rb),
                    ra.difference_count(&rb),
                );
                repr::set_kernel_policy(KernelPolicy::Reference);
                let reference = (
                    ra.intersect(&rb).to_sorted_vec(),
                    ra.union(&rb).to_sorted_vec(),
                    ra.difference(&rb).to_sorted_vec(),
                    ra.intersect_count(&rb),
                    ra.difference_count(&rb),
                );
                repr::set_kernel_policy(KernelPolicy::Optimized);
                prop_assert_eq!(&opt, &reference);
                prop_assert_eq!(&opt.0, &model_intersect(&members_a, &members_b));
                prop_assert_eq!(&opt.1, &model_union(&members_a, &members_b));
                prop_assert_eq!(&opt.2, &model_difference(&members_a, &members_b));
            }
        }
    }
}

/// Deterministic adversarial shapes for the sparse kernels: empty operands,
/// identical sets, disjoint sets, single elements, and shared endpoints.
#[test]
fn galloping_handles_adversarial_shapes() {
    let shapes: [(&[Vertex], &[Vertex]); 10] = [
        (&[], &[]),
        (&[], &[1, 2, 3]),
        (&[7], &[]),
        (&[5], &[5]),
        (&[5], &[6]),
        (&[1, 2, 3], &[1, 2, 3]),
        (&[1, 3, 5], &[0, 2, 4]),
        (&[0], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]),
        (&[9], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]),
        (&[0, 9], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]),
    ];
    for (a, b) in shapes {
        for (x, y) in [(a, b), (b, a)] {
            let merged = ops::intersect_merge_slices(x, y);
            assert_eq!(
                ops::intersect_galloping_slices(x, y),
                merged,
                "{x:?} ∩ {y:?}"
            );
            assert_eq!(ops::intersect_galloping_count(x, y), merged.len());
            let diff = ops::difference_merge_slices(x, y);
            assert_eq!(
                ops::difference_galloping_slices(x, y),
                diff,
                "{x:?} \\ {y:?}"
            );
        }
    }
}

/// The word-boundary shapes, driven end-to-end through `SetRepr` dispatch.
#[test]
fn dispatch_handles_word_boundary_and_degenerate_sets() {
    repr::set_kernel_policy(KernelPolicy::Optimized);
    for universe in [63usize, 64, 65] {
        let last = (universe - 1) as Vertex;
        let cases: [(Vec<Vertex>, Vec<Vertex>); 5] = [
            (vec![], vec![]),
            (vec![last], vec![last]),
            (vec![0], vec![last]),
            ((0..universe as Vertex).collect(), vec![last]),
            (
                (0..universe as Vertex).step_by(2).collect(),
                (0..universe as Vertex).skip(1).step_by(2).collect(),
            ),
        ];
        for (ma, mb) in cases {
            let a: BTreeSet<Vertex> = ma.iter().copied().collect();
            let b: BTreeSet<Vertex> = mb.iter().copied().collect();
            for ra in all_reprs(&a, universe) {
                for rb in all_reprs(&b, universe) {
                    assert_eq!(
                        ra.intersect(&rb).to_sorted_vec(),
                        model_intersect(&a, &b),
                        "u={universe} {:?} ∩ {:?}",
                        ra.kind(),
                        rb.kind()
                    );
                    assert_eq!(ra.union(&rb).to_sorted_vec(), model_union(&a, &b));
                    assert_eq!(ra.difference(&rb).to_sorted_vec(), model_difference(&a, &b));
                    assert_eq!(ra.intersect_count(&rb), model_intersect(&a, &b).len());
                }
            }
        }
    }
}
