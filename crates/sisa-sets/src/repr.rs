//! The tagged union over set representations used by the SISA runtime.
//!
//! A SISA set is, physically, either a sparse array (sorted or unsorted) or a
//! dense bitvector (§6.1). [`SetRepr`] is the value stored behind a set
//! identifier; operations on it dispatch to the appropriate variant in
//! [`crate::ops`], following the result-representation policy described on
//! each method.

use crate::ops;
use crate::{DenseBitVector, SortedVertexArray, UnsortedVertexArray, Vertex};

/// Which physical representation a set currently uses.
///
/// This is exactly the "set representation" field kept in the paper's
/// Set-Metadata (SM) structure (§8.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RepresentationKind {
    /// Sorted sparse array of vertex identifiers.
    SortedArray,
    /// Unsorted sparse array of vertex identifiers.
    UnsortedArray,
    /// Dense bitvector over the vertex universe.
    DenseBitvector,
}

impl RepresentationKind {
    /// Whether the representation is one of the sparse-array flavours.
    #[must_use]
    pub fn is_sparse(self) -> bool {
        matches!(self, Self::SortedArray | Self::UnsortedArray)
    }

    /// Whether the representation is the dense bitvector.
    #[must_use]
    pub fn is_dense(self) -> bool {
        matches!(self, Self::DenseBitvector)
    }
}

/// A set of vertices in one of the SISA physical representations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetRepr {
    /// Sorted sparse array.
    Sorted(SortedVertexArray),
    /// Unsorted sparse array.
    Unsorted(UnsortedVertexArray),
    /// Dense bitvector.
    Dense(DenseBitVector),
}

impl SetRepr {
    /// An empty set stored as a sorted sparse array.
    #[must_use]
    pub fn empty_sorted() -> Self {
        Self::Sorted(SortedVertexArray::new())
    }

    /// An empty set stored as a dense bitvector over `0..universe`.
    #[must_use]
    pub fn empty_dense(universe: usize) -> Self {
        Self::Dense(DenseBitVector::new(universe))
    }

    /// Builds a sorted sparse-array set from arbitrary members.
    #[must_use]
    pub fn sorted_from(members: impl IntoIterator<Item = Vertex>) -> Self {
        Self::Sorted(members.into_iter().collect())
    }

    /// Builds a dense-bitvector set from members over `0..universe`.
    #[must_use]
    pub fn dense_from(universe: usize, members: impl IntoIterator<Item = Vertex>) -> Self {
        Self::Dense(DenseBitVector::from_members(universe, members))
    }

    /// The representation kind of this set.
    #[must_use]
    pub fn kind(&self) -> RepresentationKind {
        match self {
            Self::Sorted(_) => RepresentationKind::SortedArray,
            Self::Unsorted(_) => RepresentationKind::UnsortedArray,
            Self::Dense(_) => RepresentationKind::DenseBitvector,
        }
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::Sorted(s) => s.len(),
            Self::Unsorted(s) => s.len(),
            Self::Dense(d) => d.len(),
        }
    }

    /// Whether the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage footprint in bits under the paper's cost model (§6.1).
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        match self {
            Self::Sorted(s) => crate::sparse_array_bits(s.len()),
            Self::Unsorted(s) => crate::sparse_array_bits(s.len()),
            Self::Dense(d) => crate::dense_bitvector_bits(d.universe()),
        }
    }

    /// Membership test; cost depends on the representation (§6.2.3).
    #[must_use]
    pub fn contains(&self, v: Vertex) -> bool {
        match self {
            Self::Sorted(s) => s.contains(v),
            Self::Unsorted(s) => s.contains(v),
            Self::Dense(d) => d.contains(v),
        }
    }

    /// Inserts a single element (`A ∪ {x}`); returns whether it was new.
    ///
    /// # Panics
    ///
    /// Panics if the set is a dense bitvector and `v` is outside its universe.
    pub fn insert(&mut self, v: Vertex) -> bool {
        match self {
            Self::Sorted(s) => s.insert(v),
            Self::Unsorted(s) => s.insert(v),
            Self::Dense(d) => d.insert(v),
        }
    }

    /// Removes a single element (`A \ {x}`); returns whether it was present.
    pub fn remove(&mut self, v: Vertex) -> bool {
        match self {
            Self::Sorted(s) => s.remove(v),
            Self::Unsorted(s) => s.remove(v),
            Self::Dense(d) => d.remove(v),
        }
    }

    /// The members as a freshly allocated sorted vector.
    #[must_use]
    pub fn to_sorted_vec(&self) -> Vec<Vertex> {
        match self {
            Self::Sorted(s) => s.as_slice().to_vec(),
            Self::Unsorted(s) => {
                let mut v = s.as_slice().to_vec();
                v.sort_unstable();
                v
            }
            Self::Dense(d) => d.to_sorted_vec(),
        }
    }

    /// Iterates over the members (ordering depends on the representation).
    pub fn iter(&self) -> Box<dyn Iterator<Item = Vertex> + '_> {
        match self {
            Self::Sorted(s) => Box::new(s.iter()),
            Self::Unsorted(s) => Box::new(s.iter()),
            Self::Dense(d) => Box::new(d.iter()),
        }
    }

    /// Converts to a dense bitvector over `0..universe`.
    ///
    /// # Panics
    ///
    /// Panics if any member is `>= universe`.
    #[must_use]
    pub fn to_dense(&self, universe: usize) -> DenseBitVector {
        match self {
            Self::Dense(d) if d.universe() == universe => d.clone(),
            other => DenseBitVector::from_members(universe, other.iter()),
        }
    }

    /// Converts to a sorted sparse array.
    #[must_use]
    pub fn to_sorted_array(&self) -> SortedVertexArray {
        match self {
            Self::Sorted(s) => s.clone(),
            other => SortedVertexArray::from_sorted(other.to_sorted_vec()),
        }
    }

    /// Re-encodes the set in the requested representation.
    #[must_use]
    pub fn converted_to(&self, kind: RepresentationKind, universe: usize) -> SetRepr {
        match kind {
            RepresentationKind::SortedArray => SetRepr::Sorted(self.to_sorted_array()),
            RepresentationKind::UnsortedArray => {
                SetRepr::Unsorted(UnsortedVertexArray::from_iterable(self.iter()))
            }
            RepresentationKind::DenseBitvector => SetRepr::Dense(self.to_dense(universe)),
        }
    }

    /// Set intersection `A ∩ B`.
    ///
    /// Result representation policy: DB ∩ DB stays dense (it is produced in
    /// situ); every other combination yields a sorted sparse array, because
    /// the result is no larger than the sparse operand.
    #[must_use]
    pub fn intersect(&self, other: &SetRepr) -> SetRepr {
        match (self, other) {
            (Self::Dense(a), Self::Dense(b)) => Self::Dense(ops::intersect_db_db(a, b)),
            (Self::Dense(d), sparse) | (sparse, Self::Dense(d)) => {
                let mut members = ops::intersect_sa_db(&sparse.to_sorted_vec(), d);
                members.sort_unstable();
                Self::Sorted(SortedVertexArray::from_sorted(members))
            }
            (a, b) => {
                let av = a.to_sorted_vec();
                let bv = b.to_sorted_vec();
                Self::Sorted(SortedVertexArray::from_sorted(ops::intersect_merge_slices(
                    &av, &bv,
                )))
            }
        }
    }

    /// Cardinality of `A ∩ B` without materialising the result.
    #[must_use]
    pub fn intersect_count(&self, other: &SetRepr) -> usize {
        match (self, other) {
            (Self::Dense(a), Self::Dense(b)) => ops::intersect_db_db_count(a, b),
            (Self::Dense(d), sparse) | (sparse, Self::Dense(d)) => {
                ops::intersect_sa_db_count(&sparse.to_sorted_vec(), d)
            }
            (a, b) => ops::intersect_merge_count(&a.to_sorted_vec(), &b.to_sorted_vec()),
        }
    }

    /// Set union `A ∪ B`.
    ///
    /// Result representation policy: if either operand is dense the result is
    /// dense (it can only grow); otherwise it is a sorted sparse array.
    #[must_use]
    pub fn union(&self, other: &SetRepr) -> SetRepr {
        match (self, other) {
            (Self::Dense(a), Self::Dense(b)) => Self::Dense(ops::union_db_db(a, b)),
            (Self::Dense(d), sparse) | (sparse, Self::Dense(d)) => {
                Self::Dense(ops::union_sa_db(&sparse.to_sorted_vec(), d))
            }
            (a, b) => {
                let av = a.to_sorted_vec();
                let bv = b.to_sorted_vec();
                Self::Sorted(SortedVertexArray::from_sorted(ops::union_merge_slices(
                    &av, &bv,
                )))
            }
        }
    }

    /// Cardinality of `A ∪ B` without materialising the result.
    #[must_use]
    pub fn union_count(&self, other: &SetRepr) -> usize {
        self.len() + other.len() - self.intersect_count(other)
    }

    /// Set difference `A \ B`.
    ///
    /// Result representation policy: the result keeps the representation
    /// family of `A` (it is a subset of `A`), except that an unsorted `A`
    /// yields a sorted result.
    #[must_use]
    pub fn difference(&self, other: &SetRepr) -> SetRepr {
        match (self, other) {
            (Self::Dense(a), Self::Dense(b)) => Self::Dense(ops::difference_db_db(a, b)),
            (Self::Dense(a), sparse) => {
                let b = sparse.to_dense(a.universe());
                Self::Dense(ops::difference_db_db(a, &b))
            }
            (sparse, Self::Dense(d)) => {
                let mut members = ops::difference_sa_db(&sparse.to_sorted_vec(), d);
                members.sort_unstable();
                Self::Sorted(SortedVertexArray::from_sorted(members))
            }
            (a, b) => {
                let av = a.to_sorted_vec();
                let bv = b.to_sorted_vec();
                Self::Sorted(SortedVertexArray::from_sorted(
                    ops::difference_merge_slices(&av, &bv),
                ))
            }
        }
    }

    /// Cardinality of `A \ B` without materialising the result.
    #[must_use]
    pub fn difference_count(&self, other: &SetRepr) -> usize {
        self.len() - self.intersect_count(other)
    }
}

impl Default for SetRepr {
    fn default() -> Self {
        Self::empty_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reprs(members: &[Vertex], universe: usize) -> Vec<SetRepr> {
        vec![
            SetRepr::sorted_from(members.iter().copied()),
            SetRepr::Unsorted(UnsortedVertexArray::from_iterable(members.iter().copied())),
            SetRepr::dense_from(universe, members.iter().copied()),
        ]
    }

    #[test]
    fn all_representation_pairs_agree_on_algebra() {
        let universe = 64;
        let a_members = [1u32, 5, 9, 20, 33, 60];
        let b_members = [5u32, 9, 10, 33, 61];
        let expect_inter = vec![5u32, 9, 33];
        let expect_union = vec![1u32, 5, 9, 10, 20, 33, 60, 61];
        let expect_diff = vec![1u32, 20, 60];
        for a in reprs(&a_members, universe) {
            for b in reprs(&b_members, universe) {
                assert_eq!(a.intersect(&b).to_sorted_vec(), expect_inter, "{a:?} {b:?}");
                assert_eq!(a.union(&b).to_sorted_vec(), expect_union);
                assert_eq!(a.difference(&b).to_sorted_vec(), expect_diff);
                assert_eq!(a.intersect_count(&b), 3);
                assert_eq!(a.union_count(&b), 8);
                assert_eq!(a.difference_count(&b), 3);
            }
        }
    }

    #[test]
    fn kind_and_storage() {
        let s = SetRepr::sorted_from([1u32, 2, 3]);
        let d = SetRepr::dense_from(128, [1u32, 2, 3]);
        assert_eq!(s.kind(), RepresentationKind::SortedArray);
        assert_eq!(d.kind(), RepresentationKind::DenseBitvector);
        assert!(s.kind().is_sparse());
        assert!(d.kind().is_dense());
        assert_eq!(s.storage_bits(), 96);
        assert_eq!(d.storage_bits(), 128);
    }

    #[test]
    fn insert_remove_across_representations() {
        for mut r in reprs(&[2, 4], 32) {
            assert!(r.insert(6));
            assert!(!r.insert(6));
            assert!(r.contains(6));
            assert!(r.remove(2));
            assert!(!r.remove(2));
            assert_eq!(r.to_sorted_vec(), vec![4, 6]);
        }
    }

    #[test]
    fn conversions_round_trip() {
        let original = SetRepr::sorted_from([3u32, 7, 11]);
        let dense = original.converted_to(RepresentationKind::DenseBitvector, 16);
        assert_eq!(dense.kind(), RepresentationKind::DenseBitvector);
        let unsorted = dense.converted_to(RepresentationKind::UnsortedArray, 16);
        assert_eq!(unsorted.kind(), RepresentationKind::UnsortedArray);
        let back = unsorted.converted_to(RepresentationKind::SortedArray, 16);
        assert_eq!(back.to_sorted_vec(), vec![3, 7, 11]);
    }

    #[test]
    fn dense_minus_sparse_stays_dense() {
        let a = SetRepr::dense_from(32, [1u32, 2, 3, 4]);
        let b = SetRepr::sorted_from([2u32, 4]);
        let d = a.difference(&b);
        assert_eq!(d.kind(), RepresentationKind::DenseBitvector);
        assert_eq!(d.to_sorted_vec(), vec![1, 3]);
    }

    #[test]
    fn default_is_empty_sorted() {
        let d = SetRepr::default();
        assert!(d.is_empty());
        assert_eq!(d.kind(), RepresentationKind::SortedArray);
    }
}
