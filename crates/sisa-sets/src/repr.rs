//! The tagged union over set representations used by the SISA runtime.
//!
//! A SISA set is, physically, either a sparse array (sorted or unsorted) or a
//! dense bitvector (§6.1). [`SetRepr`] is the value stored behind a set
//! identifier; operations on it dispatch to the appropriate variant in
//! [`crate::ops`], following the result-representation policy described on
//! each method.
//!
//! ## Host kernel dispatch
//!
//! Independently of the *simulated* variant selection done by the SISA
//! controller (which prices merge vs galloping in cycles), the host has to
//! actually execute each operation. [`choose_host_kernel`] implements the
//! size-ratio dispatch policy: heavily skewed sparse operands run the
//! galloping kernel, similar sizes run the linear merge, and dense operands
//! run the word-parallel bitmap kernels from [`crate::kernels`]. Operand
//! staging (sorting an unsorted array, expanding a bitvector) happens on
//! buffers leased from the thread-local [`crate::arena`] instead of fresh
//! allocations.
//!
//! [`KernelPolicy`] is a per-thread switch between this optimized path and a
//! [`KernelPolicy::Reference`] mode that reproduces the seed implementation's
//! behaviour — a fresh sorted `Vec` per operand and always-merge execution —
//! so benchmarks can measure the host-side speedup against an unchanged
//! semantic baseline.

use crate::ops;
use crate::{arena, DenseBitVector, SortedVertexArray, UnsortedVertexArray, Vertex};
use std::cell::Cell;
use std::ops::Deref;

/// Which physical representation a set currently uses.
///
/// This is exactly the "set representation" field kept in the paper's
/// Set-Metadata (SM) structure (§8.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RepresentationKind {
    /// Sorted sparse array of vertex identifiers.
    SortedArray,
    /// Unsorted sparse array of vertex identifiers.
    UnsortedArray,
    /// Dense bitvector over the vertex universe.
    DenseBitvector,
}

impl RepresentationKind {
    /// Whether the representation is one of the sparse-array flavours.
    #[must_use]
    pub fn is_sparse(self) -> bool {
        matches!(self, Self::SortedArray | Self::UnsortedArray)
    }

    /// Whether the representation is the dense bitvector.
    #[must_use]
    pub fn is_dense(self) -> bool {
        matches!(self, Self::DenseBitvector)
    }
}

/// The host-side execution strategy chosen for one binary set operation.
///
/// This is about *wall-clock* execution on the simulating host; the cycle
/// cost charged by the simulated SISA controller is decided separately (and
/// independently) by the SCU's variant selection in `sisa-core`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HostKernel {
    /// Linear two-pointer merge over two sorted arrays.
    Merge,
    /// Galloping (exponential-probe) search of the larger sorted array.
    Gallop,
    /// Word-parallel bitwise kernel (or single-bit probe) over a bitvector.
    Bitmap,
}

/// How [`SetRepr`]'s hot binary operations execute on this thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelPolicy {
    /// Arena-staged operands plus size-ratio kernel dispatch (the default).
    Optimized,
    /// The seed implementation's behaviour: a freshly allocated sorted `Vec`
    /// per operand and always-merge sparse execution. Used as the benchmark
    /// baseline; results are identical to [`KernelPolicy::Optimized`].
    Reference,
}

/// Per-thread tally of which host kernel the dispatch policy selected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelSelectionCounts {
    /// Operations executed with the linear merge kernel.
    pub merge: u64,
    /// Operations executed with the galloping kernel.
    pub gallop: u64,
    /// Operations executed with a bitmap (word-parallel or probing) kernel.
    pub bitmap: u64,
}

impl KernelSelectionCounts {
    /// Total operations tallied.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.merge + self.gallop + self.bitmap
    }
}

/// Size skew at which galloping replaces merging for sparse×sparse ops.
///
/// Galloping costs `O(|small| · log(|large| / |small|))`; with the probe
/// overhead (each element pays the exponential scan *and* the bracketed
/// binary search) it reliably beats the `O(|small| + |large|)` merge once the
/// larger operand is ~16× the smaller one.
pub const GALLOP_RATIO: usize = 16;

/// Picks the host kernel for a sparse×sparse binary operation from the two
/// operand cardinalities, per the size-ratio dispatch policy.
#[must_use]
pub fn choose_host_kernel(len_a: usize, len_b: usize) -> HostKernel {
    let (small, large) = if len_a <= len_b {
        (len_a, len_b)
    } else {
        (len_b, len_a)
    };
    if small > 0 && large >= small.saturating_mul(GALLOP_RATIO) {
        HostKernel::Gallop
    } else {
        HostKernel::Merge
    }
}

thread_local! {
    static POLICY: Cell<KernelPolicy> = const { Cell::new(KernelPolicy::Optimized) };
    static SELECTIONS: Cell<KernelSelectionCounts> = const {
        Cell::new(KernelSelectionCounts {
            merge: 0,
            gallop: 0,
            bitmap: 0,
        })
    };
}

/// The kernel policy currently active on this thread.
#[must_use]
pub fn kernel_policy() -> KernelPolicy {
    POLICY.with(Cell::get)
}

/// Sets the kernel policy for this thread (worker threads start
/// [`KernelPolicy::Optimized`]).
pub fn set_kernel_policy(policy: KernelPolicy) {
    POLICY.with(|p| p.set(policy));
}

/// This thread's cumulative kernel-selection tallies.
#[must_use]
pub fn kernel_selection_counts() -> KernelSelectionCounts {
    SELECTIONS.with(Cell::get)
}

/// Resets this thread's kernel-selection tallies.
pub fn reset_kernel_selection_counts() {
    SELECTIONS.with(|s| s.set(KernelSelectionCounts::default()));
}

fn record_selection(kernel: HostKernel) {
    SELECTIONS.with(|s| {
        let mut counts = s.get();
        match kernel {
            HostKernel::Merge => counts.merge += 1,
            HostKernel::Gallop => counts.gallop += 1,
            HostKernel::Bitmap => counts.bitmap += 1,
        }
        s.set(counts);
    });
}

/// Chooses (and tallies) the kernel for a sparse×sparse operation under the
/// active policy: [`KernelPolicy::Reference`] always merges.
fn dispatch_sparse(len_a: usize, len_b: usize) -> HostKernel {
    let kernel = match kernel_policy() {
        KernelPolicy::Optimized => choose_host_kernel(len_a, len_b),
        KernelPolicy::Reference => HostKernel::Merge,
    };
    record_selection(kernel);
    kernel
}

/// A sorted slice view of one operand, staged per the active policy.
enum SortedView<'a> {
    /// The operand was already a sorted array: borrow it, zero cost.
    Borrowed(&'a [Vertex]),
    /// Reference policy: a freshly allocated sorted copy (seed behaviour).
    Owned(Vec<Vertex>),
    /// Optimized policy: a sorted copy on an arena-leased scratch buffer.
    Leased(arena::VertexScratch),
}

impl Deref for SortedView<'_> {
    type Target = [Vertex];
    fn deref(&self) -> &[Vertex] {
        match self {
            Self::Borrowed(s) => s,
            Self::Owned(v) => v,
            Self::Leased(buf) => buf,
        }
    }
}

/// Stages `set` as a sorted slice for a sparse kernel.
fn staged(set: &SetRepr) -> SortedView<'_> {
    if kernel_policy() == KernelPolicy::Reference {
        return SortedView::Owned(set.to_sorted_vec());
    }
    match set {
        SetRepr::Sorted(s) => SortedView::Borrowed(s.as_slice()),
        SetRepr::Unsorted(s) => {
            let mut buf = arena::vertices();
            buf.extend_from_slice(s.as_slice());
            buf.sort_unstable();
            SortedView::Leased(buf)
        }
        SetRepr::Dense(d) => {
            let mut buf = arena::vertices();
            buf.extend(d.iter());
            SortedView::Leased(buf)
        }
    }
}

/// A set of vertices in one of the SISA physical representations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetRepr {
    /// Sorted sparse array.
    Sorted(SortedVertexArray),
    /// Unsorted sparse array.
    Unsorted(UnsortedVertexArray),
    /// Dense bitvector.
    Dense(DenseBitVector),
}

impl SetRepr {
    /// An empty set stored as a sorted sparse array.
    #[must_use]
    pub fn empty_sorted() -> Self {
        Self::Sorted(SortedVertexArray::new())
    }

    /// An empty set stored as a dense bitvector over `0..universe`.
    #[must_use]
    pub fn empty_dense(universe: usize) -> Self {
        Self::Dense(DenseBitVector::new(universe))
    }

    /// Builds a sorted sparse-array set from arbitrary members.
    #[must_use]
    pub fn sorted_from(members: impl IntoIterator<Item = Vertex>) -> Self {
        Self::Sorted(members.into_iter().collect())
    }

    /// Builds a dense-bitvector set from members over `0..universe`.
    #[must_use]
    pub fn dense_from(universe: usize, members: impl IntoIterator<Item = Vertex>) -> Self {
        Self::Dense(DenseBitVector::from_members(universe, members))
    }

    /// The representation kind of this set.
    #[must_use]
    pub fn kind(&self) -> RepresentationKind {
        match self {
            Self::Sorted(_) => RepresentationKind::SortedArray,
            Self::Unsorted(_) => RepresentationKind::UnsortedArray,
            Self::Dense(_) => RepresentationKind::DenseBitvector,
        }
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::Sorted(s) => s.len(),
            Self::Unsorted(s) => s.len(),
            Self::Dense(d) => d.len(),
        }
    }

    /// Whether the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage footprint in bits under the paper's cost model (§6.1).
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        match self {
            Self::Sorted(s) => crate::sparse_array_bits(s.len()),
            Self::Unsorted(s) => crate::sparse_array_bits(s.len()),
            Self::Dense(d) => crate::dense_bitvector_bits(d.universe()),
        }
    }

    /// Membership test; cost depends on the representation (§6.2.3).
    #[must_use]
    pub fn contains(&self, v: Vertex) -> bool {
        match self {
            Self::Sorted(s) => s.contains(v),
            Self::Unsorted(s) => s.contains(v),
            Self::Dense(d) => d.contains(v),
        }
    }

    /// Inserts a single element (`A ∪ {x}`); returns whether it was new.
    ///
    /// # Panics
    ///
    /// Panics if the set is a dense bitvector and `v` is outside its universe.
    pub fn insert(&mut self, v: Vertex) -> bool {
        match self {
            Self::Sorted(s) => s.insert(v),
            Self::Unsorted(s) => s.insert(v),
            Self::Dense(d) => d.insert(v),
        }
    }

    /// Removes a single element (`A \ {x}`); returns whether it was present.
    pub fn remove(&mut self, v: Vertex) -> bool {
        match self {
            Self::Sorted(s) => s.remove(v),
            Self::Unsorted(s) => s.remove(v),
            Self::Dense(d) => d.remove(v),
        }
    }

    /// The members as a freshly allocated sorted vector.
    #[must_use]
    pub fn to_sorted_vec(&self) -> Vec<Vertex> {
        match self {
            Self::Sorted(s) => s.as_slice().to_vec(),
            Self::Unsorted(s) => {
                let mut v = s.as_slice().to_vec();
                v.sort_unstable();
                v
            }
            Self::Dense(d) => d.to_sorted_vec(),
        }
    }

    /// Iterates over the members (ordering depends on the representation).
    pub fn iter(&self) -> Box<dyn Iterator<Item = Vertex> + '_> {
        match self {
            Self::Sorted(s) => Box::new(s.iter()),
            Self::Unsorted(s) => Box::new(s.iter()),
            Self::Dense(d) => Box::new(d.iter()),
        }
    }

    /// Converts to a dense bitvector over `0..universe`.
    ///
    /// # Panics
    ///
    /// Panics if any member is `>= universe`.
    #[must_use]
    pub fn to_dense(&self, universe: usize) -> DenseBitVector {
        match self {
            Self::Dense(d) if d.universe() == universe => d.clone(),
            other => DenseBitVector::from_members(universe, other.iter()),
        }
    }

    /// Converts to a sorted sparse array.
    #[must_use]
    pub fn to_sorted_array(&self) -> SortedVertexArray {
        match self {
            Self::Sorted(s) => s.clone(),
            other => SortedVertexArray::from_sorted(other.to_sorted_vec()),
        }
    }

    /// Re-encodes the set in the requested representation.
    #[must_use]
    pub fn converted_to(&self, kind: RepresentationKind, universe: usize) -> SetRepr {
        match kind {
            RepresentationKind::SortedArray => SetRepr::Sorted(self.to_sorted_array()),
            RepresentationKind::UnsortedArray => {
                SetRepr::Unsorted(UnsortedVertexArray::from_iterable(self.iter()))
            }
            RepresentationKind::DenseBitvector => SetRepr::Dense(self.to_dense(universe)),
        }
    }

    /// Set intersection `A ∩ B`.
    ///
    /// Result representation policy: DB ∩ DB stays dense (it is produced in
    /// situ); every other combination yields a sorted sparse array, because
    /// the result is no larger than the sparse operand.
    ///
    /// Host execution follows the active [`KernelPolicy`]: sparse pairs
    /// dispatch merge vs galloping via [`choose_host_kernel`], dense pairs run
    /// the word-parallel bitmap kernel.
    #[must_use]
    pub fn intersect(&self, other: &SetRepr) -> SetRepr {
        match (self, other) {
            (Self::Dense(a), Self::Dense(b)) => {
                record_selection(HostKernel::Bitmap);
                Self::Dense(ops::intersect_db_db(a, b))
            }
            (Self::Dense(d), sparse) | (sparse, Self::Dense(d)) => {
                record_selection(HostKernel::Bitmap);
                let view = staged(sparse);
                // The staged view is sorted, so the probe output already is.
                let members = ops::intersect_sa_db(&view, d);
                Self::Sorted(SortedVertexArray::from_sorted(members))
            }
            (a, b) => {
                let av = staged(a);
                let bv = staged(b);
                let out = match dispatch_sparse(av.len(), bv.len()) {
                    HostKernel::Gallop => ops::intersect_galloping_slices(&av, &bv),
                    _ => ops::intersect_merge_slices(&av, &bv),
                };
                Self::Sorted(SortedVertexArray::from_sorted(out))
            }
        }
    }

    /// Cardinality of `A ∩ B` without materialising the result.
    #[must_use]
    pub fn intersect_count(&self, other: &SetRepr) -> usize {
        match (self, other) {
            (Self::Dense(a), Self::Dense(b)) => {
                record_selection(HostKernel::Bitmap);
                ops::intersect_db_db_count(a, b)
            }
            (Self::Dense(d), sparse) | (sparse, Self::Dense(d)) => {
                record_selection(HostKernel::Bitmap);
                let view = staged(sparse);
                ops::intersect_sa_db_count(&view, d)
            }
            (a, b) => {
                let av = staged(a);
                let bv = staged(b);
                match dispatch_sparse(av.len(), bv.len()) {
                    HostKernel::Gallop => ops::intersect_galloping_count(&av, &bv),
                    _ => ops::intersect_merge_count(&av, &bv),
                }
            }
        }
    }

    /// Set union `A ∪ B`.
    ///
    /// Result representation policy: if either operand is dense the result is
    /// dense (it can only grow); otherwise it is a sorted sparse array.
    ///
    /// Unions always touch every element of both operands, so the sparse path
    /// always merges; there is no galloping variant to dispatch to.
    #[must_use]
    pub fn union(&self, other: &SetRepr) -> SetRepr {
        match (self, other) {
            (Self::Dense(a), Self::Dense(b)) => {
                record_selection(HostKernel::Bitmap);
                Self::Dense(ops::union_db_db(a, b))
            }
            (Self::Dense(d), sparse) | (sparse, Self::Dense(d)) => {
                record_selection(HostKernel::Bitmap);
                let view = staged(sparse);
                Self::Dense(ops::union_sa_db(&view, d))
            }
            (a, b) => {
                record_selection(HostKernel::Merge);
                let av = staged(a);
                let bv = staged(b);
                Self::Sorted(SortedVertexArray::from_sorted(ops::union_merge_slices(
                    &av, &bv,
                )))
            }
        }
    }

    /// Cardinality of `A ∪ B` without materialising the result.
    #[must_use]
    pub fn union_count(&self, other: &SetRepr) -> usize {
        self.len() + other.len() - self.intersect_count(other)
    }

    /// Set difference `A \ B`.
    ///
    /// Result representation policy: the result keeps the representation
    /// family of `A` (it is a subset of `A`), except that an unsorted `A`
    /// yields a sorted result.
    ///
    /// The sparse×sparse path gallops into `B` when it is at least
    /// [`GALLOP_RATIO`]× larger than `A` (every element of `A` is looked up
    /// in `B`, so only `B`'s size matters for the skew test).
    #[must_use]
    pub fn difference(&self, other: &SetRepr) -> SetRepr {
        match (self, other) {
            (Self::Dense(a), Self::Dense(b)) => {
                record_selection(HostKernel::Bitmap);
                Self::Dense(ops::difference_db_db(a, b))
            }
            (Self::Dense(a), sparse) => {
                record_selection(HostKernel::Bitmap);
                let b = sparse.to_dense(a.universe());
                Self::Dense(ops::difference_db_db(a, &b))
            }
            (sparse, Self::Dense(d)) => {
                record_selection(HostKernel::Bitmap);
                let view = staged(sparse);
                // The staged view is sorted, so the probe output already is.
                let members = ops::difference_sa_db(&view, d);
                Self::Sorted(SortedVertexArray::from_sorted(members))
            }
            (a, b) => {
                let av = staged(a);
                let bv = staged(b);
                let gallop = kernel_policy() == KernelPolicy::Optimized
                    && !av.is_empty()
                    && bv.len() >= av.len().saturating_mul(GALLOP_RATIO);
                let kernel = if gallop {
                    HostKernel::Gallop
                } else {
                    HostKernel::Merge
                };
                record_selection(kernel);
                let out = match kernel {
                    HostKernel::Gallop => ops::difference_galloping_slices(&av, &bv),
                    _ => ops::difference_merge_slices(&av, &bv),
                };
                Self::Sorted(SortedVertexArray::from_sorted(out))
            }
        }
    }

    /// Cardinality of `A \ B` without materialising the result.
    #[must_use]
    pub fn difference_count(&self, other: &SetRepr) -> usize {
        self.len() - self.intersect_count(other)
    }
}

impl Default for SetRepr {
    fn default() -> Self {
        Self::empty_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reprs(members: &[Vertex], universe: usize) -> Vec<SetRepr> {
        vec![
            SetRepr::sorted_from(members.iter().copied()),
            SetRepr::Unsorted(UnsortedVertexArray::from_iterable(members.iter().copied())),
            SetRepr::dense_from(universe, members.iter().copied()),
        ]
    }

    #[test]
    fn all_representation_pairs_agree_on_algebra() {
        let universe = 64;
        let a_members = [1u32, 5, 9, 20, 33, 60];
        let b_members = [5u32, 9, 10, 33, 61];
        let expect_inter = vec![5u32, 9, 33];
        let expect_union = vec![1u32, 5, 9, 10, 20, 33, 60, 61];
        let expect_diff = vec![1u32, 20, 60];
        for a in reprs(&a_members, universe) {
            for b in reprs(&b_members, universe) {
                assert_eq!(a.intersect(&b).to_sorted_vec(), expect_inter, "{a:?} {b:?}");
                assert_eq!(a.union(&b).to_sorted_vec(), expect_union);
                assert_eq!(a.difference(&b).to_sorted_vec(), expect_diff);
                assert_eq!(a.intersect_count(&b), 3);
                assert_eq!(a.union_count(&b), 8);
                assert_eq!(a.difference_count(&b), 3);
            }
        }
    }

    #[test]
    fn kind_and_storage() {
        let s = SetRepr::sorted_from([1u32, 2, 3]);
        let d = SetRepr::dense_from(128, [1u32, 2, 3]);
        assert_eq!(s.kind(), RepresentationKind::SortedArray);
        assert_eq!(d.kind(), RepresentationKind::DenseBitvector);
        assert!(s.kind().is_sparse());
        assert!(d.kind().is_dense());
        assert_eq!(s.storage_bits(), 96);
        assert_eq!(d.storage_bits(), 128);
    }

    #[test]
    fn insert_remove_across_representations() {
        for mut r in reprs(&[2, 4], 32) {
            assert!(r.insert(6));
            assert!(!r.insert(6));
            assert!(r.contains(6));
            assert!(r.remove(2));
            assert!(!r.remove(2));
            assert_eq!(r.to_sorted_vec(), vec![4, 6]);
        }
    }

    #[test]
    fn conversions_round_trip() {
        let original = SetRepr::sorted_from([3u32, 7, 11]);
        let dense = original.converted_to(RepresentationKind::DenseBitvector, 16);
        assert_eq!(dense.kind(), RepresentationKind::DenseBitvector);
        let unsorted = dense.converted_to(RepresentationKind::UnsortedArray, 16);
        assert_eq!(unsorted.kind(), RepresentationKind::UnsortedArray);
        let back = unsorted.converted_to(RepresentationKind::SortedArray, 16);
        assert_eq!(back.to_sorted_vec(), vec![3, 7, 11]);
    }

    #[test]
    fn dense_minus_sparse_stays_dense() {
        let a = SetRepr::dense_from(32, [1u32, 2, 3, 4]);
        let b = SetRepr::sorted_from([2u32, 4]);
        let d = a.difference(&b);
        assert_eq!(d.kind(), RepresentationKind::DenseBitvector);
        assert_eq!(d.to_sorted_vec(), vec![1, 3]);
    }

    #[test]
    fn default_is_empty_sorted() {
        let d = SetRepr::default();
        assert!(d.is_empty());
        assert_eq!(d.kind(), RepresentationKind::SortedArray);
    }

    #[test]
    fn host_kernel_choice_follows_the_size_ratio() {
        assert_eq!(choose_host_kernel(100, 100), HostKernel::Merge);
        assert_eq!(choose_host_kernel(100, 1599), HostKernel::Merge);
        assert_eq!(choose_host_kernel(100, 1600), HostKernel::Gallop);
        assert_eq!(choose_host_kernel(1600, 100), HostKernel::Gallop);
        assert_eq!(choose_host_kernel(0, 1_000_000), HostKernel::Merge);
        assert_eq!(choose_host_kernel(1, GALLOP_RATIO), HostKernel::Gallop);
    }

    #[test]
    fn dispatch_policy_tallies_selections() {
        reset_kernel_selection_counts();
        set_kernel_policy(KernelPolicy::Optimized);
        let small = SetRepr::sorted_from(0..4u32);
        let large = SetRepr::sorted_from((0..256u32).map(|v| v * 2));
        let even = SetRepr::sorted_from((0..256u32).map(|v| v * 2 + 1));
        let da = SetRepr::dense_from(64, [1u32, 2, 3]);
        let db = SetRepr::dense_from(64, [2u32, 3, 4]);
        assert_eq!(small.intersect(&large).to_sorted_vec(), vec![0, 2]);
        assert_eq!(large.intersect(&even).len(), 0);
        assert_eq!(da.intersect(&db).to_sorted_vec(), vec![2, 3]);
        let counts = kernel_selection_counts();
        assert_eq!(
            counts,
            KernelSelectionCounts {
                merge: 1,
                gallop: 1,
                bitmap: 1,
            }
        );
        assert_eq!(counts.total(), 3);
        reset_kernel_selection_counts();
        assert_eq!(kernel_selection_counts().total(), 0);
    }

    #[test]
    fn reference_policy_matches_optimized_results() {
        let universe = 512;
        let a_members: Vec<Vertex> = (0..512u32).filter(|v| v % 3 == 0).collect();
        let b_members: Vec<Vertex> = (0..512u32).filter(|v| v % 97 == 0).collect();
        for a in reprs(&a_members, universe) {
            for b in reprs(&b_members, universe) {
                set_kernel_policy(KernelPolicy::Optimized);
                let opt = (
                    a.intersect(&b).to_sorted_vec(),
                    a.union(&b).to_sorted_vec(),
                    a.difference(&b).to_sorted_vec(),
                    a.intersect_count(&b),
                );
                set_kernel_policy(KernelPolicy::Reference);
                let reference = (
                    a.intersect(&b).to_sorted_vec(),
                    a.union(&b).to_sorted_vec(),
                    a.difference(&b).to_sorted_vec(),
                    a.intersect_count(&b),
                );
                set_kernel_policy(KernelPolicy::Optimized);
                assert_eq!(opt, reference, "{:?} vs {:?}", a.kind(), b.kind());
            }
        }
    }

    #[test]
    fn skewed_difference_gallops_and_agrees_with_merge() {
        reset_kernel_selection_counts();
        set_kernel_policy(KernelPolicy::Optimized);
        let a = SetRepr::sorted_from([5u32, 100, 2000, 3999]);
        let b = SetRepr::sorted_from((0..4000u32).filter(|v| v % 2 == 0));
        let diff = a.difference(&b);
        assert_eq!(diff.to_sorted_vec(), vec![5, 3999]);
        assert_eq!(kernel_selection_counts().gallop, 1);
    }

    #[test]
    fn optimized_staging_reuses_arena_buffers() {
        set_kernel_policy(KernelPolicy::Optimized);
        let a = SetRepr::Unsorted(UnsortedVertexArray::from_iterable([9u32, 1, 5]));
        let b = SetRepr::Unsorted(UnsortedVertexArray::from_iterable([5u32, 9, 12]));
        let _ = a.intersect(&b); // warm the pool
        arena::reset_stats();
        for _ in 0..8 {
            assert_eq!(a.intersect(&b).to_sorted_vec(), vec![5, 9]);
        }
        let stats = arena::stats();
        assert_eq!(stats.leases, 16, "two staged operands per op");
        assert_eq!(stats.reuses, 16, "all leases must be pool hits");
    }
}
