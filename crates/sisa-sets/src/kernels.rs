//! Word-parallel kernels over raw `u64` word slices.
//!
//! These are the host-side execution kernels behind the dense-bitvector set
//! operations: bulk bitwise combines over 64-bit words with the result's
//! popcount fused into the same pass (`count_ones` reductions), so callers
//! never re-walk the words to recover the cardinality. The inner loops are
//! unrolled four words at a time — 256 set-universe bits per iteration — which
//! lets the compiler keep four independent combine+popcount chains in flight
//! instead of serialising on one accumulator.
//!
//! Three flavours exist for each bitwise operation:
//!
//! * `*_into` — writes the result into a caller-provided buffer, reusing its
//!   capacity (the destination-reuse path that keeps hot binary ops from
//!   allocating a fresh `Vec` per call);
//! * `*_assign` — combines in place into the left operand;
//! * `*_count` — folds the popcount only, materialising nothing.
//!
//! All functions require equally long inputs (dense bitvectors over the same
//! universe always are) and return the number of set bits in the result.

/// Combines `a` and `b` word-by-word into `out` (clearing it first) and
/// returns the popcount of the result, in one unrolled pass.
#[inline(always)]
fn combine_into(a: &[u64], b: &[u64], out: &mut Vec<u64>, f: impl Fn(u64, u64) -> u64) -> u64 {
    assert_eq!(a.len(), b.len(), "word slices must be equally long");
    out.clear();
    out.reserve(a.len());
    let mut ones = 0u64;
    let split = a.len() & !3;
    for (wa, wb) in a[..split].chunks_exact(4).zip(b[..split].chunks_exact(4)) {
        let w0 = f(wa[0], wb[0]);
        let w1 = f(wa[1], wb[1]);
        let w2 = f(wa[2], wb[2]);
        let w3 = f(wa[3], wb[3]);
        ones += u64::from(w0.count_ones())
            + u64::from(w1.count_ones())
            + u64::from(w2.count_ones())
            + u64::from(w3.count_ones());
        out.extend_from_slice(&[w0, w1, w2, w3]);
    }
    for (&wa, &wb) in a[split..].iter().zip(&b[split..]) {
        let w = f(wa, wb);
        ones += u64::from(w.count_ones());
        out.push(w);
    }
    ones
}

/// Combines `src` into `dst` in place and returns the popcount of the result,
/// in one unrolled pass.
#[inline(always)]
fn combine_assign(dst: &mut [u64], src: &[u64], f: impl Fn(u64, u64) -> u64) -> u64 {
    assert_eq!(dst.len(), src.len(), "word slices must be equally long");
    let mut ones = 0u64;
    let split = dst.len() & !3;
    for (wd, ws) in dst[..split]
        .chunks_exact_mut(4)
        .zip(src[..split].chunks_exact(4))
    {
        let w0 = f(wd[0], ws[0]);
        let w1 = f(wd[1], ws[1]);
        let w2 = f(wd[2], ws[2]);
        let w3 = f(wd[3], ws[3]);
        ones += u64::from(w0.count_ones())
            + u64::from(w1.count_ones())
            + u64::from(w2.count_ones())
            + u64::from(w3.count_ones());
        wd[0] = w0;
        wd[1] = w1;
        wd[2] = w2;
        wd[3] = w3;
    }
    for (wd, &ws) in dst[split..].iter_mut().zip(&src[split..]) {
        let w = f(*wd, ws);
        ones += u64::from(w.count_ones());
        *wd = w;
    }
    ones
}

/// Folds the popcount of the word-wise combination without materialising it,
/// in one unrolled pass.
#[inline(always)]
fn combine_count(a: &[u64], b: &[u64], f: impl Fn(u64, u64) -> u64) -> u64 {
    assert_eq!(a.len(), b.len(), "word slices must be equally long");
    let mut ones = 0u64;
    let split = a.len() & !3;
    for (wa, wb) in a[..split].chunks_exact(4).zip(b[..split].chunks_exact(4)) {
        ones += u64::from(f(wa[0], wb[0]).count_ones())
            + u64::from(f(wa[1], wb[1]).count_ones())
            + u64::from(f(wa[2], wb[2]).count_ones())
            + u64::from(f(wa[3], wb[3]).count_ones());
    }
    for (&wa, &wb) in a[split..].iter().zip(&b[split..]) {
        ones += u64::from(f(wa, wb).count_ones());
    }
    ones
}

/// `out = a & b` (set intersection); returns the result's popcount.
pub fn and_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) -> u64 {
    combine_into(a, b, out, |x, y| x & y)
}

/// `out = a | b` (set union); returns the result's popcount.
pub fn or_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) -> u64 {
    combine_into(a, b, out, |x, y| x | y)
}

/// `out = a & !b` (set difference); returns the result's popcount.
pub fn and_not_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) -> u64 {
    combine_into(a, b, out, |x, y| x & !y)
}

/// `out = a ^ b` (symmetric difference); returns the result's popcount.
pub fn xor_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) -> u64 {
    combine_into(a, b, out, |x, y| x ^ y)
}

/// `dst &= src`; returns the result's popcount.
pub fn and_assign(dst: &mut [u64], src: &[u64]) -> u64 {
    combine_assign(dst, src, |x, y| x & y)
}

/// `dst |= src`; returns the result's popcount.
pub fn or_assign(dst: &mut [u64], src: &[u64]) -> u64 {
    combine_assign(dst, src, |x, y| x | y)
}

/// `dst &= !src`; returns the result's popcount.
pub fn and_not_assign(dst: &mut [u64], src: &[u64]) -> u64 {
    combine_assign(dst, src, |x, y| x & !y)
}

/// `dst ^= src`; returns the result's popcount.
pub fn xor_assign(dst: &mut [u64], src: &[u64]) -> u64 {
    combine_assign(dst, src, |x, y| x ^ y)
}

/// Popcount of `a & b` without materialising it.
#[must_use]
pub fn and_count(a: &[u64], b: &[u64]) -> u64 {
    combine_count(a, b, |x, y| x & y)
}

/// Popcount of `a | b` without materialising it.
#[must_use]
pub fn or_count(a: &[u64], b: &[u64]) -> u64 {
    combine_count(a, b, |x, y| x | y)
}

/// Popcount of `a & !b` without materialising it.
#[must_use]
pub fn and_not_count(a: &[u64], b: &[u64]) -> u64 {
    combine_count(a, b, |x, y| x & !y)
}

/// Popcount of `a ^ b` without materialising it.
#[must_use]
pub fn xor_count(a: &[u64], b: &[u64]) -> u64 {
    combine_count(a, b, |x, y| x ^ y)
}

/// Popcount of a word slice, unrolled four words at a time.
#[must_use]
pub fn popcount(words: &[u64]) -> u64 {
    let mut ones = 0u64;
    let split = words.len() & !3;
    for w in words[..split].chunks_exact(4) {
        ones += u64::from(w[0].count_ones())
            + u64::from(w[1].count_ones())
            + u64::from(w[2].count_ones())
            + u64::from(w[3].count_ones());
    }
    for &w in &words[split..] {
        ones += u64::from(w.count_ones());
    }
    ones
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar reference: the same combination one word at a time.
    fn reference(a: &[u64], b: &[u64], f: impl Fn(u64, u64) -> u64) -> (Vec<u64>, u64) {
        let words: Vec<u64> = a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect();
        let ones = words.iter().map(|w| u64::from(w.count_ones())).sum();
        (words, ones)
    }

    fn inputs(len: usize) -> (Vec<u64>, Vec<u64>) {
        // Deterministic pseudo-random words exercising every unroll tail.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let a: Vec<u64> = (0..len).map(|_| next()).collect();
        let b: Vec<u64> = (0..len).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn all_flavours_match_the_scalar_reference_at_every_tail_length() {
        type Op = (
            fn(&[u64], &[u64], &mut Vec<u64>) -> u64,
            fn(&mut [u64], &[u64]) -> u64,
            fn(&[u64], &[u64]) -> u64,
            fn(u64, u64) -> u64,
        );
        let ops: [Op; 4] = [
            (and_into, and_assign, and_count, |x, y| x & y),
            (or_into, or_assign, or_count, |x, y| x | y),
            (and_not_into, and_not_assign, and_not_count, |x, y| x & !y),
            (xor_into, xor_assign, xor_count, |x, y| x ^ y),
        ];
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 31, 32, 33, 100] {
            let (a, b) = inputs(len);
            for (into, assign, count, f) in ops {
                let (want_words, want_ones) = reference(&a, &b, f);
                let mut out = Vec::new();
                assert_eq!(into(&a, &b, &mut out), want_ones, "into ones len={len}");
                assert_eq!(out, want_words, "into words len={len}");
                let mut dst = a.clone();
                assert_eq!(assign(&mut dst, &b), want_ones, "assign ones len={len}");
                assert_eq!(dst, want_words, "assign words len={len}");
                assert_eq!(count(&a, &b), want_ones, "count len={len}");
            }
            assert_eq!(
                popcount(&a),
                a.iter().map(|w| u64::from(w.count_ones())).sum::<u64>()
            );
        }
    }

    #[test]
    fn into_reuses_the_buffer_capacity() {
        let (a, b) = inputs(64);
        let mut out = Vec::new();
        and_into(&a, &b, &mut out);
        let ptr = out.as_ptr();
        let cap = out.capacity();
        for _ in 0..10 {
            or_into(&a, &b, &mut out);
        }
        assert_eq!(out.as_ptr(), ptr, "buffer must not be reallocated");
        assert_eq!(out.capacity(), cap, "capacity must not grow");
    }

    #[test]
    #[should_panic(expected = "equally long")]
    fn mismatched_lengths_panic() {
        let _ = and_count(&[1, 2], &[3]);
    }
}
