//! Dense bitvector (DB) set representation.
//!
//! A dense bitvector over a universe of `n` vertices occupies exactly `n` bits
//! (padded to 64-bit words); the `i`-th bit is set iff vertex `i` is a member.
//! In SISA these are the sets processed *in situ* by bulk bitwise DRAM
//! operations (SISA-PUM): intersection is a bulk AND, union a bulk OR, and
//! difference an AND with the negation (§8.1).

use crate::kernels;
use crate::Vertex;

/// A dense bitvector over a fixed vertex universe `0..universe`.
///
/// The cardinality is maintained incrementally so that `|A|` queries are
/// `O(1)`, mirroring the paper's decision to keep set sizes in metadata
/// (§6.2.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DenseBitVector {
    words: Vec<u64>,
    universe: usize,
    len: usize,
}

impl DenseBitVector {
    /// Creates an empty bitvector over `0..universe`.
    #[must_use]
    pub fn new(universe: usize) -> Self {
        Self {
            words: vec![0u64; universe.div_ceil(64)],
            universe,
            len: 0,
        }
    }

    /// Creates a bitvector over `0..universe` with every vertex present.
    #[must_use]
    pub fn full(universe: usize) -> Self {
        let mut db = Self::new(universe);
        for w in &mut db.words {
            *w = u64::MAX;
        }
        db.clear_padding();
        db.len = universe;
        db
    }

    /// Builds a bitvector from an iterator of members.
    ///
    /// # Panics
    ///
    /// Panics if any member is `>= universe`.
    #[must_use]
    pub fn from_members(universe: usize, members: impl IntoIterator<Item = Vertex>) -> Self {
        let mut db = Self::new(universe);
        for v in members {
            db.insert(v);
        }
        db
    }

    /// Builds a bitvector from a sorted slice of members.
    #[must_use]
    pub fn from_sorted_slice(universe: usize, members: &[Vertex]) -> Self {
        Self::from_members(universe, members.iter().copied())
    }

    /// The universe size `n` (number of addressable vertices).
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of members (`O(1)`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of 64-bit words backing the bitvector.
    #[must_use]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Read-only access to the backing words.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Membership test (`O(1)`, a single bit probe).
    ///
    /// Vertices outside the universe are reported as absent.
    #[must_use]
    pub fn contains(&self, v: Vertex) -> bool {
        let idx = v as usize;
        if idx >= self.universe {
            return false;
        }
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Inserts `v` (`O(1)`, set a bit). Returns `true` if newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `v >= universe`.
    pub fn insert(&mut self, v: Vertex) -> bool {
        let idx = v as usize;
        assert!(
            idx < self.universe,
            "vertex {v} outside universe {}",
            self.universe
        );
        let mask = 1u64 << (idx % 64);
        let word = &mut self.words[idx / 64];
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `v` (`O(1)`, clear a bit). Returns `true` if it was present.
    pub fn remove(&mut self, v: Vertex) -> bool {
        let idx = v as usize;
        if idx >= self.universe {
            return false;
        }
        let mask = 1u64 << (idx % 64);
        let word = &mut self.words[idx / 64];
        if *word & mask != 0 {
            *word &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
        self.len = 0;
    }

    /// Iterates over the members in increasing order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Converts to a sorted vector of members.
    #[must_use]
    pub fn to_sorted_vec(&self) -> Vec<Vertex> {
        self.iter().collect()
    }

    /// Bitwise AND (set intersection). Universes must match.
    #[must_use]
    pub fn and(&self, other: &Self) -> Self {
        self.combine(other, kernels::and_into)
    }

    /// Bitwise OR (set union). Universes must match.
    #[must_use]
    pub fn or(&self, other: &Self) -> Self {
        self.combine(other, kernels::or_into)
    }

    /// Bitwise AND-NOT (set difference `self \ other`). Universes must match.
    #[must_use]
    pub fn and_not(&self, other: &Self) -> Self {
        self.combine(other, kernels::and_not_into)
    }

    /// Bitwise XOR (symmetric difference). Universes must match.
    #[must_use]
    pub fn xor(&self, other: &Self) -> Self {
        self.combine(other, kernels::xor_into)
    }

    /// Bitwise AND into an existing bitvector, reusing its word storage (no
    /// allocation once `out`'s buffer has reached this universe's word count).
    pub fn and_into(&self, other: &Self, out: &mut Self) {
        self.combine_reusing(other, out, kernels::and_into);
    }

    /// Bitwise OR into an existing bitvector, reusing its word storage.
    pub fn or_into(&self, other: &Self, out: &mut Self) {
        self.combine_reusing(other, out, kernels::or_into);
    }

    /// Bitwise AND-NOT into an existing bitvector, reusing its word storage.
    pub fn and_not_into(&self, other: &Self, out: &mut Self) {
        self.combine_reusing(other, out, kernels::and_not_into);
    }

    /// Complement within the universe.
    #[must_use]
    pub fn not(&self) -> Self {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.clear_padding();
        out.recount();
        out
    }

    /// In-place intersection: `self &= other`.
    pub fn and_assign(&mut self, other: &Self) {
        self.assert_same_universe(other);
        self.len = kernels::and_assign(&mut self.words, &other.words) as usize;
        self.debug_assert_padding_clear();
    }

    /// In-place union: `self |= other`.
    pub fn or_assign(&mut self, other: &Self) {
        self.assert_same_universe(other);
        self.len = kernels::or_assign(&mut self.words, &other.words) as usize;
        self.debug_assert_padding_clear();
    }

    /// In-place difference: `self &= !other`.
    pub fn and_not_assign(&mut self, other: &Self) {
        self.assert_same_universe(other);
        self.len = kernels::and_not_assign(&mut self.words, &other.words) as usize;
        self.debug_assert_padding_clear();
    }

    /// Cardinality of the intersection without materialising it.
    #[must_use]
    pub fn and_count(&self, other: &Self) -> usize {
        self.assert_same_universe(other);
        kernels::and_count(&self.words, &other.words) as usize
    }

    /// Cardinality of the union without materialising it.
    #[must_use]
    pub fn or_count(&self, other: &Self) -> usize {
        self.assert_same_universe(other);
        kernels::or_count(&self.words, &other.words) as usize
    }

    /// Cardinality of `self \ other` without materialising it.
    #[must_use]
    pub fn and_not_count(&self, other: &Self) -> usize {
        self.assert_same_universe(other);
        kernels::and_not_count(&self.words, &other.words) as usize
    }

    /// Whether `self` and `other` share no member.
    #[must_use]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.assert_same_universe(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Whether every member of `self` is also a member of `other`.
    #[must_use]
    pub fn is_subset(&self, other: &Self) -> bool {
        self.assert_same_universe(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Runs a word-parallel kernel over both operands into a fresh bitvector.
    /// The kernel's fused popcount becomes the cardinality directly — there is
    /// no separate recount pass, and no padding fix-up is needed because every
    /// binary combine of padding-clean inputs stays padding-clean (the padding
    /// words of both operands are zero, and `0 op 0 = 0` for AND, OR, AND-NOT
    /// and XOR alike).
    fn combine(&self, other: &Self, kernel: impl Fn(&[u64], &[u64], &mut Vec<u64>) -> u64) -> Self {
        self.assert_same_universe(other);
        let mut words = Vec::new();
        let ones = kernel(&self.words, &other.words, &mut words);
        let out = Self {
            words,
            universe: self.universe,
            len: ones as usize,
        };
        out.debug_assert_padding_clear();
        out
    }

    /// Like [`Self::combine`] but writes into `out`, reusing its word buffer.
    fn combine_reusing(
        &self,
        other: &Self,
        out: &mut Self,
        kernel: impl Fn(&[u64], &[u64], &mut Vec<u64>) -> u64,
    ) {
        self.assert_same_universe(other);
        out.universe = self.universe;
        out.len = kernel(&self.words, &other.words, &mut out.words) as usize;
        out.debug_assert_padding_clear();
    }

    fn assert_same_universe(&self, other: &Self) {
        assert_eq!(
            self.universe, other.universe,
            "dense bitvector universes differ ({} vs {})",
            self.universe, other.universe
        );
    }

    fn clear_padding(&mut self) {
        let rem = self.universe % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    fn debug_assert_padding_clear(&self) {
        debug_assert!(
            self.universe.is_multiple_of(64)
                || self
                    .words
                    .last()
                    .is_none_or(|w| w & !((1u64 << (self.universe % 64)) - 1) == 0),
            "padding bits must stay clear"
        );
    }

    fn recount(&mut self) {
        self.len = kernels::popcount(&self.words) as usize;
    }
}

/// Iterator over the set bits of a [`DenseBitVector`], in increasing order.
#[derive(Debug, Clone)]
pub struct BitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = Vertex;

    fn next(&mut self) -> Option<Vertex> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros();
                self.current &= self.current - 1;
                return Some((self.word_idx as u64 * 64 + u64::from(bit)) as Vertex);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a DenseBitVector {
    type Item = Vertex;
    type IntoIter = BitIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut db = DenseBitVector::new(100);
        assert!(db.insert(5));
        assert!(!db.insert(5));
        assert!(db.insert(99));
        assert!(db.contains(5));
        assert!(db.contains(99));
        assert!(!db.contains(6));
        assert!(!db.contains(200));
        assert_eq!(db.len(), 2);
        assert!(db.remove(5));
        assert!(!db.remove(5));
        assert_eq!(db.len(), 1);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        let mut db = DenseBitVector::new(10);
        db.insert(10);
    }

    #[test]
    fn full_and_not() {
        let full = DenseBitVector::full(70);
        assert_eq!(full.len(), 70);
        let empty = full.not();
        assert_eq!(empty.len(), 0);
        let members = DenseBitVector::from_members(70, [0u32, 69]);
        let compl = members.not();
        assert_eq!(compl.len(), 68);
        assert!(!compl.contains(0));
        assert!(!compl.contains(69));
        assert!(compl.contains(1));
    }

    #[test]
    fn bitwise_ops_match_set_semantics() {
        let a = DenseBitVector::from_members(200, [1u32, 3, 5, 100, 150]);
        let b = DenseBitVector::from_members(200, [3u32, 5, 7, 150, 199]);
        assert_eq!(a.and(&b).to_sorted_vec(), vec![3, 5, 150]);
        assert_eq!(a.or(&b).to_sorted_vec(), vec![1, 3, 5, 7, 100, 150, 199]);
        assert_eq!(a.and_not(&b).to_sorted_vec(), vec![1, 100]);
        assert_eq!(a.xor(&b).to_sorted_vec(), vec![1, 7, 100, 199]);
        assert_eq!(a.and_count(&b), 3);
        assert_eq!(a.or_count(&b), 7);
        assert_eq!(a.and_not_count(&b), 2);
    }

    #[test]
    fn destination_reuse_ops_do_not_reallocate() {
        let a = DenseBitVector::from_members(1000, (0..1000).step_by(3).map(|v| v as Vertex));
        let b = DenseBitVector::from_members(1000, (0..1000).step_by(5).map(|v| v as Vertex));
        let mut out = DenseBitVector::new(1000);
        a.and_into(&b, &mut out);
        let ptr = out.words().as_ptr();
        for _ in 0..8 {
            a.and_into(&b, &mut out);
            a.or_into(&b, &mut out);
            a.and_not_into(&b, &mut out);
        }
        assert_eq!(
            out.words().as_ptr(),
            ptr,
            "destination buffer must be reused, not reallocated"
        );
        assert_eq!(out.to_sorted_vec(), a.and_not(&b).to_sorted_vec());
        assert_eq!(out.len(), a.and_not(&b).len());
    }

    #[test]
    fn in_place_ops_fuse_the_count() {
        // The in-place kernels return the popcount directly; `len()` must
        // agree with a from-scratch recount on word-boundary universes.
        for universe in [63usize, 64, 65, 128, 130] {
            let mut a =
                DenseBitVector::from_members(universe, (0..universe as u32).filter(|v| v % 2 == 0));
            let b =
                DenseBitVector::from_members(universe, (0..universe as u32).filter(|v| v % 3 == 0));
            a.and_assign(&b);
            assert_eq!(a.len(), a.iter().count(), "universe {universe}");
            a.or_assign(&b);
            assert_eq!(a.len(), a.iter().count(), "universe {universe}");
            a.and_not_assign(&b);
            assert_eq!(a.len(), a.iter().count(), "universe {universe}");
        }
    }

    #[test]
    fn in_place_ops() {
        let mut a = DenseBitVector::from_members(64, [0u32, 1, 2, 3]);
        let b = DenseBitVector::from_members(64, [2u32, 3, 4]);
        a.and_assign(&b);
        assert_eq!(a.to_sorted_vec(), vec![2, 3]);
        a.or_assign(&b);
        assert_eq!(a.to_sorted_vec(), vec![2, 3, 4]);
        a.and_not_assign(&DenseBitVector::from_members(64, [3u32]));
        assert_eq!(a.to_sorted_vec(), vec![2, 4]);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = DenseBitVector::from_members(50, [1u32, 2]);
        let b = DenseBitVector::from_members(50, [1u32, 2, 3]);
        let c = DenseBitVector::from_members(50, [10u32, 20]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn iterator_yields_sorted_members() {
        let members = vec![0u32, 63, 64, 65, 127, 128, 199];
        let db = DenseBitVector::from_members(200, members.clone());
        assert_eq!(db.to_sorted_vec(), members);
        assert_eq!(db.iter().count(), members.len());
    }

    #[test]
    fn empty_universe_is_fine() {
        let db = DenseBitVector::new(0);
        assert_eq!(db.len(), 0);
        assert!(db.iter().next().is_none());
        assert!(!db.contains(0));
    }
}
