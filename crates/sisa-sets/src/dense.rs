//! Dense bitvector (DB) set representation.
//!
//! A dense bitvector over a universe of `n` vertices occupies exactly `n` bits
//! (padded to 64-bit words); the `i`-th bit is set iff vertex `i` is a member.
//! In SISA these are the sets processed *in situ* by bulk bitwise DRAM
//! operations (SISA-PUM): intersection is a bulk AND, union a bulk OR, and
//! difference an AND with the negation (§8.1).

use crate::Vertex;

/// A dense bitvector over a fixed vertex universe `0..universe`.
///
/// The cardinality is maintained incrementally so that `|A|` queries are
/// `O(1)`, mirroring the paper's decision to keep set sizes in metadata
/// (§6.2.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DenseBitVector {
    words: Vec<u64>,
    universe: usize,
    len: usize,
}

impl DenseBitVector {
    /// Creates an empty bitvector over `0..universe`.
    #[must_use]
    pub fn new(universe: usize) -> Self {
        Self {
            words: vec![0u64; universe.div_ceil(64)],
            universe,
            len: 0,
        }
    }

    /// Creates a bitvector over `0..universe` with every vertex present.
    #[must_use]
    pub fn full(universe: usize) -> Self {
        let mut db = Self::new(universe);
        for w in &mut db.words {
            *w = u64::MAX;
        }
        db.clear_padding();
        db.len = universe;
        db
    }

    /// Builds a bitvector from an iterator of members.
    ///
    /// # Panics
    ///
    /// Panics if any member is `>= universe`.
    #[must_use]
    pub fn from_members(universe: usize, members: impl IntoIterator<Item = Vertex>) -> Self {
        let mut db = Self::new(universe);
        for v in members {
            db.insert(v);
        }
        db
    }

    /// Builds a bitvector from a sorted slice of members.
    #[must_use]
    pub fn from_sorted_slice(universe: usize, members: &[Vertex]) -> Self {
        Self::from_members(universe, members.iter().copied())
    }

    /// The universe size `n` (number of addressable vertices).
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of members (`O(1)`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of 64-bit words backing the bitvector.
    #[must_use]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Read-only access to the backing words.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Membership test (`O(1)`, a single bit probe).
    ///
    /// Vertices outside the universe are reported as absent.
    #[must_use]
    pub fn contains(&self, v: Vertex) -> bool {
        let idx = v as usize;
        if idx >= self.universe {
            return false;
        }
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Inserts `v` (`O(1)`, set a bit). Returns `true` if newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `v >= universe`.
    pub fn insert(&mut self, v: Vertex) -> bool {
        let idx = v as usize;
        assert!(
            idx < self.universe,
            "vertex {v} outside universe {}",
            self.universe
        );
        let mask = 1u64 << (idx % 64);
        let word = &mut self.words[idx / 64];
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `v` (`O(1)`, clear a bit). Returns `true` if it was present.
    pub fn remove(&mut self, v: Vertex) -> bool {
        let idx = v as usize;
        if idx >= self.universe {
            return false;
        }
        let mask = 1u64 << (idx % 64);
        let word = &mut self.words[idx / 64];
        if *word & mask != 0 {
            *word &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
        self.len = 0;
    }

    /// Iterates over the members in increasing order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Converts to a sorted vector of members.
    #[must_use]
    pub fn to_sorted_vec(&self) -> Vec<Vertex> {
        self.iter().collect()
    }

    /// Bitwise AND (set intersection). Universes must match.
    #[must_use]
    pub fn and(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a & b)
    }

    /// Bitwise OR (set union). Universes must match.
    #[must_use]
    pub fn or(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a | b)
    }

    /// Bitwise AND-NOT (set difference `self \ other`). Universes must match.
    #[must_use]
    pub fn and_not(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a & !b)
    }

    /// Bitwise XOR (symmetric difference). Universes must match.
    #[must_use]
    pub fn xor(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a ^ b)
    }

    /// Complement within the universe.
    #[must_use]
    pub fn not(&self) -> Self {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.clear_padding();
        out.recount();
        out
    }

    /// In-place intersection: `self &= other`.
    pub fn and_assign(&mut self, other: &Self) {
        self.zip_assign(other, |a, b| a & b);
    }

    /// In-place union: `self |= other`.
    pub fn or_assign(&mut self, other: &Self) {
        self.zip_assign(other, |a, b| a | b);
    }

    /// In-place difference: `self &= !other`.
    pub fn and_not_assign(&mut self, other: &Self) {
        self.zip_assign(other, |a, b| a & !b);
    }

    /// Cardinality of the intersection without materialising it.
    #[must_use]
    pub fn and_count(&self, other: &Self) -> usize {
        self.assert_same_universe(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Cardinality of the union without materialising it.
    #[must_use]
    pub fn or_count(&self, other: &Self) -> usize {
        self.assert_same_universe(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// Cardinality of `self \ other` without materialising it.
    #[must_use]
    pub fn and_not_count(&self, other: &Self) -> usize {
        self.assert_same_universe(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Whether `self` and `other` share no member.
    #[must_use]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.assert_same_universe(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Whether every member of `self` is also a member of `other`.
    #[must_use]
    pub fn is_subset(&self, other: &Self) -> bool {
        self.assert_same_universe(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    fn zip_with(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        self.assert_same_universe(other);
        let words: Vec<u64> = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| f(a, b))
            .collect();
        let mut out = Self {
            words,
            universe: self.universe,
            len: 0,
        };
        out.clear_padding();
        out.recount();
        out
    }

    fn zip_assign(&mut self, other: &Self, f: impl Fn(u64, u64) -> u64) {
        self.assert_same_universe(other);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a = f(*a, b);
        }
        self.clear_padding();
        self.recount();
    }

    fn assert_same_universe(&self, other: &Self) {
        assert_eq!(
            self.universe, other.universe,
            "dense bitvector universes differ ({} vs {})",
            self.universe, other.universe
        );
    }

    fn clear_padding(&mut self) {
        let rem = self.universe % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    fn recount(&mut self) {
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }
}

/// Iterator over the set bits of a [`DenseBitVector`], in increasing order.
#[derive(Debug, Clone)]
pub struct BitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = Vertex;

    fn next(&mut self) -> Option<Vertex> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros();
                self.current &= self.current - 1;
                return Some((self.word_idx as u64 * 64 + u64::from(bit)) as Vertex);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a DenseBitVector {
    type Item = Vertex;
    type IntoIter = BitIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut db = DenseBitVector::new(100);
        assert!(db.insert(5));
        assert!(!db.insert(5));
        assert!(db.insert(99));
        assert!(db.contains(5));
        assert!(db.contains(99));
        assert!(!db.contains(6));
        assert!(!db.contains(200));
        assert_eq!(db.len(), 2);
        assert!(db.remove(5));
        assert!(!db.remove(5));
        assert_eq!(db.len(), 1);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        let mut db = DenseBitVector::new(10);
        db.insert(10);
    }

    #[test]
    fn full_and_not() {
        let full = DenseBitVector::full(70);
        assert_eq!(full.len(), 70);
        let empty = full.not();
        assert_eq!(empty.len(), 0);
        let members = DenseBitVector::from_members(70, [0u32, 69]);
        let compl = members.not();
        assert_eq!(compl.len(), 68);
        assert!(!compl.contains(0));
        assert!(!compl.contains(69));
        assert!(compl.contains(1));
    }

    #[test]
    fn bitwise_ops_match_set_semantics() {
        let a = DenseBitVector::from_members(200, [1u32, 3, 5, 100, 150]);
        let b = DenseBitVector::from_members(200, [3u32, 5, 7, 150, 199]);
        assert_eq!(a.and(&b).to_sorted_vec(), vec![3, 5, 150]);
        assert_eq!(a.or(&b).to_sorted_vec(), vec![1, 3, 5, 7, 100, 150, 199]);
        assert_eq!(a.and_not(&b).to_sorted_vec(), vec![1, 100]);
        assert_eq!(a.xor(&b).to_sorted_vec(), vec![1, 7, 100, 199]);
        assert_eq!(a.and_count(&b), 3);
        assert_eq!(a.or_count(&b), 7);
        assert_eq!(a.and_not_count(&b), 2);
    }

    #[test]
    fn in_place_ops() {
        let mut a = DenseBitVector::from_members(64, [0u32, 1, 2, 3]);
        let b = DenseBitVector::from_members(64, [2u32, 3, 4]);
        a.and_assign(&b);
        assert_eq!(a.to_sorted_vec(), vec![2, 3]);
        a.or_assign(&b);
        assert_eq!(a.to_sorted_vec(), vec![2, 3, 4]);
        a.and_not_assign(&DenseBitVector::from_members(64, [3u32]));
        assert_eq!(a.to_sorted_vec(), vec![2, 4]);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = DenseBitVector::from_members(50, [1u32, 2]);
        let b = DenseBitVector::from_members(50, [1u32, 2, 3]);
        let c = DenseBitVector::from_members(50, [10u32, 20]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn iterator_yields_sorted_members() {
        let members = vec![0u32, 63, 64, 65, 127, 128, 199];
        let db = DenseBitVector::from_members(200, members.clone());
        assert_eq!(db.to_sorted_vec(), members);
        assert_eq!(db.iter().count(), members.len());
    }

    #[test]
    fn empty_universe_is_fine() {
        let db = DenseBitVector::new(0);
        assert_eq!(db.len(), 0);
        assert!(db.iter().next().is_none());
        assert!(!db.contains(0));
    }
}
