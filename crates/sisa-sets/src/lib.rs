//! # sisa-sets
//!
//! Set representations and set algorithms underlying the SISA
//! (Set-centric Instruction Set Architecture) design from
//! *"SISA: Set-Centric Instruction Set Architecture for Graph Mining on
//! Processing-in-Memory Systems"* (Besta et al., MICRO 2021).
//!
//! The paper represents vertex sets in one of two ways (§6.1, Figure 4):
//!
//! * **Sparse arrays (SA)** — a contiguous array of vertex identifiers, either
//!   sorted ([`SortedVertexArray`]) or unsorted ([`UnsortedVertexArray`]).
//!   An SA occupies `W · |S|` bits where `W` is the machine word size.
//! * **Dense bitvectors (DB)** — a length-`n` bitvector ([`DenseBitVector`])
//!   whose `i`-th bit indicates whether vertex `i` is a member.
//!
//! [`SetRepr`] is the tagged union over the three concrete representations and
//! is what the SISA runtime stores behind a set identifier.
//!
//! The [`ops`] module implements every set-operation *variant* that Table 5 of
//! the paper turns into an instruction: merge and galloping intersection /
//! difference over sorted SAs, SA∩DB probing, DB∩DB bulk bitwise operations,
//! unions, cardinality-only variants (which avoid materialising the result),
//! membership tests, and single-element insert/remove.
//!
//! The [`counting`] module provides instrumented twins of the hot operations
//! that additionally report the number of element comparisons / word touches
//! performed; the benchmark harness uses these to regenerate the empirical
//! side of the paper's Table 6 complexity analysis.
//!
//! Two modules serve raw host-side speed rather than the paper's cost model:
//! [`kernels`] holds the word-parallel `u64` combines with fused popcounts
//! that back every dense-bitvector operation, and [`arena`] is the
//! thread-local scratch-buffer pool the hot [`SetRepr`] paths lease operand
//! staging from instead of allocating per call. [`repr`] additionally hosts
//! the size-ratio dispatch policy ([`repr::choose_host_kernel`]) that picks
//! merge vs galloping vs bitmap execution per operation.
//!
//! This crate is purely algorithmic: it knows nothing about timing, PIM or the
//! SISA controller. Those live in `sisa-pim` and `sisa-core`.
//!
//! ## Example
//!
//! ```
//! use sisa_sets::{SortedVertexArray, DenseBitVector, ops};
//!
//! let a = SortedVertexArray::from_unsorted(vec![5, 1, 9, 3]);
//! let b = SortedVertexArray::from_unsorted(vec![3, 9, 12]);
//! let inter = ops::intersect_merge(&a, &b);
//! assert_eq!(inter.as_slice(), &[3, 9]);
//!
//! let db = DenseBitVector::from_members(16, [3u32, 9, 12]);
//! assert_eq!(ops::intersect_sa_db_count(a.as_slice(), &db), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod counting;
pub mod dense;
pub mod kernels;
pub mod ops;
pub mod repr;
pub mod serde_impls;
pub mod sparse;

pub use dense::DenseBitVector;
pub use repr::{HostKernel, KernelPolicy, KernelSelectionCounts, RepresentationKind, SetRepr};
pub use sparse::{SortedVertexArray, UnsortedVertexArray};

/// A vertex identifier.
///
/// The paper models vertices as integers `1..=n`; we use zero-based `u32`
/// identifiers, matching the assumption that "the maximum vertex ID fits in
/// one word" (§2).
pub type Vertex = u32;

/// The machine word size in bits assumed when reasoning about storage costs.
///
/// The paper's storage formulas (§6.1) express a sparse array's footprint as
/// `W · |S|` bits; we fix `W = 32` because vertex identifiers are `u32`.
pub const WORD_BITS: usize = 32;

/// Storage size, in bits, of a sparse array holding `len` vertices.
#[must_use]
pub fn sparse_array_bits(len: usize) -> usize {
    len * WORD_BITS
}

/// Storage size, in bits, of a dense bitvector over a universe of `n` vertices.
///
/// Dense bitvectors always occupy `n` bits regardless of how many members they
/// have (rounded up to whole 64-bit words internally).
#[must_use]
pub fn dense_bitvector_bits(universe: usize) -> usize {
    universe.div_ceil(64) * 64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_formulas_match_paper() {
        // §6.1: for |N(v)| = n/2 a DB takes n bits while an SA takes 16n bits
        // (with W = 32).
        let n = 1024usize;
        assert_eq!(sparse_array_bits(n / 2), 16 * n);
        assert_eq!(dense_bitvector_bits(n), n);
    }

    #[test]
    fn dense_bits_round_up_to_words() {
        assert_eq!(dense_bitvector_bits(1), 64);
        assert_eq!(dense_bitvector_bits(64), 64);
        assert_eq!(dense_bitvector_bits(65), 128);
        assert_eq!(dense_bitvector_bits(0), 0);
    }
}
