//! Sparse-array (SA) set representations.
//!
//! A sparse array stores only the members of a set, one vertex identifier per
//! machine word. The paper distinguishes *sorted* sparse arrays (used for
//! static, sorted vertex neighbourhoods, §6.1) from *unsorted* sparse arrays
//! (occasionally used for small auxiliary sets). Both are provided here.

use crate::Vertex;

/// A sorted, duplicate-free array of vertex identifiers.
///
/// This is the representation used for the vast majority of vertex
/// neighbourhoods: neighbourhoods are static and stored sorted, "following the
/// established practice in graph processing" (§6.1). Sorted order is an
/// invariant of the type: every constructor either sorts or checks.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct SortedVertexArray {
    items: Vec<Vertex>,
}

impl SortedVertexArray {
    /// Creates an empty sorted array.
    #[must_use]
    pub fn new() -> Self {
        Self { items: Vec::new() }
    }

    /// Creates an empty sorted array with capacity for `cap` members.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            items: Vec::with_capacity(cap),
        }
    }

    /// Builds a sorted array from arbitrary (possibly unsorted, possibly
    /// duplicated) input, sorting and deduplicating it.
    #[must_use]
    pub fn from_unsorted(mut items: Vec<Vertex>) -> Self {
        items.sort_unstable();
        items.dedup();
        Self { items }
    }

    /// Builds a sorted array from input that is already sorted and
    /// duplicate-free.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the invariant does not hold; in release
    /// builds the invariant is trusted.
    #[must_use]
    pub fn from_sorted(items: Vec<Vertex>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "input to from_sorted must be strictly increasing"
        );
        Self { items }
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The members as a sorted slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Vertex] {
        &self.items
    }

    /// Consumes the set and returns the underlying sorted vector.
    #[must_use]
    pub fn into_vec(self) -> Vec<Vertex> {
        self.items
    }

    /// Membership test by binary search (`O(log |S|)`).
    #[must_use]
    pub fn contains(&self, v: Vertex) -> bool {
        self.items.binary_search(&v).is_ok()
    }

    /// Inserts `v`, keeping the array sorted. Returns `true` if `v` was newly
    /// inserted (`O(|S|)` worst case because of element shifting, matching the
    /// paper's cost discussion in §6.2.4).
    pub fn insert(&mut self, v: Vertex) -> bool {
        match self.items.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, v);
                true
            }
        }
    }

    /// Removes `v` if present. Returns `true` if it was removed.
    pub fn remove(&mut self, v: Vertex) -> bool {
        match self.items.binary_search(&v) {
            Ok(pos) => {
                self.items.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterates over the members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Vertex> + '_ {
        self.items.iter().copied()
    }

    /// The smallest member, if any.
    #[must_use]
    pub fn min(&self) -> Option<Vertex> {
        self.items.first().copied()
    }

    /// The largest member, if any.
    #[must_use]
    pub fn max(&self) -> Option<Vertex> {
        self.items.last().copied()
    }

    /// Returns the rank of `v` (number of members strictly smaller than `v`).
    #[must_use]
    pub fn rank(&self, v: Vertex) -> usize {
        match self.items.binary_search(&v) {
            Ok(p) | Err(p) => p,
        }
    }

    /// Retains only the members for which the predicate holds.
    pub fn retain(&mut self, mut keep: impl FnMut(Vertex) -> bool) {
        self.items.retain(|&v| keep(v));
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl FromIterator<Vertex> for SortedVertexArray {
    fn from_iter<T: IntoIterator<Item = Vertex>>(iter: T) -> Self {
        Self::from_unsorted(iter.into_iter().collect())
    }
}

impl From<Vec<Vertex>> for SortedVertexArray {
    fn from(v: Vec<Vertex>) -> Self {
        Self::from_unsorted(v)
    }
}

impl<'a> IntoIterator for &'a SortedVertexArray {
    type Item = Vertex;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Vertex>>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter().copied()
    }
}

/// An unsorted, duplicate-free array of vertex identifiers.
///
/// The paper notes (§6.2.1) that auxiliary algorithmic sets are sometimes kept
/// unsorted; intersecting an unsorted SA with a sorted SA or a DB then probes
/// each element individually. Insertions are `O(1)` amortised (append) at the
/// price of `O(|S|)` membership tests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UnsortedVertexArray {
    items: Vec<Vertex>,
}

impl UnsortedVertexArray {
    /// Creates an empty unsorted array.
    #[must_use]
    pub fn new() -> Self {
        Self { items: Vec::new() }
    }

    /// Builds an unsorted array from arbitrary input, removing duplicates but
    /// preserving first-occurrence order.
    #[must_use]
    pub fn from_iterable(items: impl IntoIterator<Item = Vertex>) -> Self {
        let mut out = Self::new();
        for v in items {
            out.insert(v);
        }
        out
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The members as a slice in insertion order.
    #[must_use]
    pub fn as_slice(&self) -> &[Vertex] {
        &self.items
    }

    /// Membership test by linear scan (`O(|S|)`).
    #[must_use]
    pub fn contains(&self, v: Vertex) -> bool {
        self.items.contains(&v)
    }

    /// Inserts `v` if not already present; returns whether it was inserted.
    pub fn insert(&mut self, v: Vertex) -> bool {
        if self.contains(v) {
            false
        } else {
            self.items.push(v);
            true
        }
    }

    /// Appends `v` without checking for duplicates.
    ///
    /// Callers must guarantee `v` is not already a member; this is the `O(1)`
    /// append path used when the algorithm structurally guarantees uniqueness.
    pub fn push_unique(&mut self, v: Vertex) {
        debug_assert!(!self.contains(v), "push_unique called with a duplicate");
        self.items.push(v);
    }

    /// Removes `v` if present (swap-remove, order not preserved). Returns
    /// whether it was removed.
    pub fn remove(&mut self, v: Vertex) -> bool {
        if let Some(pos) = self.items.iter().position(|&x| x == v) {
            self.items.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Iterates over the members in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Vertex> + '_ {
        self.items.iter().copied()
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Sorts the members, converting into a [`SortedVertexArray`].
    #[must_use]
    pub fn into_sorted(self) -> SortedVertexArray {
        SortedVertexArray::from_unsorted(self.items)
    }
}

impl FromIterator<Vertex> for UnsortedVertexArray {
    fn from_iter<T: IntoIterator<Item = Vertex>>(iter: T) -> Self {
        Self::from_iterable(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_from_unsorted_sorts_and_dedups() {
        let s = SortedVertexArray::from_unsorted(vec![7, 3, 3, 9, 1, 7]);
        assert_eq!(s.as_slice(), &[1, 3, 7, 9]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn sorted_contains_and_rank() {
        let s = SortedVertexArray::from_unsorted(vec![2, 4, 6, 8]);
        assert!(s.contains(4));
        assert!(!s.contains(5));
        assert_eq!(s.rank(2), 0);
        assert_eq!(s.rank(5), 2);
        assert_eq!(s.rank(100), 4);
    }

    #[test]
    fn sorted_insert_remove_keep_order() {
        let mut s = SortedVertexArray::from_unsorted(vec![10, 30]);
        assert!(s.insert(20));
        assert!(!s.insert(20));
        assert_eq!(s.as_slice(), &[10, 20, 30]);
        assert!(s.remove(10));
        assert!(!s.remove(10));
        assert_eq!(s.as_slice(), &[20, 30]);
    }

    #[test]
    fn sorted_min_max() {
        let s = SortedVertexArray::from_unsorted(vec![5, 2, 9]);
        assert_eq!(s.min(), Some(2));
        assert_eq!(s.max(), Some(9));
        assert_eq!(SortedVertexArray::new().min(), None);
    }

    #[test]
    fn sorted_retain_and_clear() {
        let mut s = SortedVertexArray::from_unsorted(vec![1, 2, 3, 4, 5, 6]);
        s.retain(|v| v % 2 == 0);
        assert_eq!(s.as_slice(), &[2, 4, 6]);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn sorted_from_iterator() {
        let s: SortedVertexArray = [9u32, 1, 5, 1].into_iter().collect();
        assert_eq!(s.as_slice(), &[1, 5, 9]);
        let back: Vec<u32> = (&s).into_iter().collect();
        assert_eq!(back, vec![1, 5, 9]);
    }

    #[test]
    fn unsorted_insert_preserves_order_and_dedups() {
        let mut u = UnsortedVertexArray::new();
        assert!(u.insert(5));
        assert!(u.insert(1));
        assert!(!u.insert(5));
        assert_eq!(u.as_slice(), &[5, 1]);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn unsorted_remove_is_swap_remove() {
        let mut u = UnsortedVertexArray::from_iterable([1, 2, 3, 4]);
        assert!(u.remove(2));
        assert!(!u.remove(2));
        assert_eq!(u.len(), 3);
        assert!(u.contains(1) && u.contains(3) && u.contains(4));
    }

    #[test]
    fn unsorted_into_sorted() {
        let u = UnsortedVertexArray::from_iterable([9, 2, 7]);
        assert_eq!(u.into_sorted().as_slice(), &[2, 7, 9]);
    }

    #[test]
    fn unsorted_from_iterator_dedups() {
        let u: UnsortedVertexArray = [3u32, 3, 1].into_iter().collect();
        assert_eq!(u.as_slice(), &[3, 1]);
    }
}
