//! Serialization of set representations through the vendored serde shim.
//!
//! A [`SetRepr`] serializes as a tagged map — `{"kind": ..., "members": ...}`
//! plus the universe for dense bitvectors — so traced set contents can be
//! checked into JSON fixtures and rebuilt bit-for-bit: the member order of
//! unsorted arrays and the universe of dense bitvectors survive the round
//! trip, which keeps `PartialEq` equality exact. (The vendored `serde_derive`
//! shim only handles named-field structs, hence the manual impls.)

use crate::{DenseBitVector, SetRepr, SortedVertexArray, UnsortedVertexArray, Vertex};
use serde::{Content, Deserialize, Error, Serialize};

impl Serialize for SetRepr {
    fn to_content(&self) -> Content {
        let kind = match self {
            SetRepr::Sorted(_) => "sorted",
            SetRepr::Unsorted(_) => "unsorted",
            SetRepr::Dense(_) => "dense",
        };
        let members: Vec<Vertex> = match self {
            SetRepr::Sorted(s) => s.as_slice().to_vec(),
            SetRepr::Unsorted(s) => s.as_slice().to_vec(),
            SetRepr::Dense(d) => d.to_sorted_vec(),
        };
        let mut entries = vec![("kind".to_string(), Content::Str(kind.to_string()))];
        if let SetRepr::Dense(d) = self {
            entries.push(("universe".to_string(), Content::U64(d.universe() as u64)));
        }
        entries.push(("members".to_string(), members.to_content()));
        Content::Map(entries)
    }
}

impl Deserialize for SetRepr {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let kind = content
            .get("kind")
            .ok_or_else(|| Error::custom("set repr without a `kind` tag"))?;
        let kind = String::from_content(kind)?;
        let members = content
            .get("members")
            .ok_or_else(|| Error::custom("set repr without `members`"))?;
        let members = Vec::<Vertex>::from_content(members)?;
        match kind.as_str() {
            "sorted" => {
                if members.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(Error::custom("sorted set repr with unsorted members"));
                }
                Ok(SetRepr::Sorted(SortedVertexArray::from_sorted(members)))
            }
            "unsorted" => Ok(SetRepr::Unsorted(UnsortedVertexArray::from_iterable(
                members,
            ))),
            "dense" => {
                let universe = content
                    .get("universe")
                    .ok_or_else(|| Error::custom("dense set repr without a `universe`"))?;
                let universe = usize::from_content(universe)?;
                if let Some(&v) = members.iter().find(|&&v| v as usize >= universe) {
                    return Err(Error::custom(format!(
                        "dense set member {v} outside universe {universe}"
                    )));
                }
                Ok(SetRepr::Dense(DenseBitVector::from_members(
                    universe, members,
                )))
            }
            other => Err(Error::custom(format!("unknown set repr kind `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_representation_round_trips_exactly() {
        let reprs = [
            SetRepr::sorted_from([1u32, 5, 9]),
            SetRepr::Unsorted(UnsortedVertexArray::from_iterable([9u32, 1, 5])),
            SetRepr::dense_from(32, [0u32, 31, 7]),
            SetRepr::empty_sorted(),
            SetRepr::empty_dense(16),
        ];
        for repr in reprs {
            let back = SetRepr::from_content(&repr.to_content()).unwrap();
            assert_eq!(back, repr);
            assert_eq!(back.kind(), repr.kind());
        }
    }

    #[test]
    fn unsorted_member_order_survives() {
        let repr = SetRepr::Unsorted(UnsortedVertexArray::from_iterable([9u32, 1, 5]));
        let back = SetRepr::from_content(&repr.to_content()).unwrap();
        match back {
            SetRepr::Unsorted(s) => assert_eq!(s.as_slice(), &[9, 1, 5]),
            other => panic!("wrong representation {other:?}"),
        }
    }

    #[test]
    fn malformed_content_is_rejected() {
        assert!(SetRepr::from_content(&Content::U64(3)).is_err());
        let missing_kind = Content::Map(vec![("members".into(), Content::Seq(vec![]))]);
        assert!(SetRepr::from_content(&missing_kind).is_err());
        let bad_kind = Content::Map(vec![
            ("kind".into(), Content::Str("mystery".into())),
            ("members".into(), Content::Seq(vec![])),
        ]);
        assert!(SetRepr::from_content(&bad_kind).is_err());
        let unsorted_sorted = Content::Map(vec![
            ("kind".into(), Content::Str("sorted".into())),
            ("members".into(), vec![3u32, 1].to_content()),
        ]);
        assert!(SetRepr::from_content(&unsorted_sorted).is_err());
        let out_of_universe = Content::Map(vec![
            ("kind".into(), Content::Str("dense".into())),
            ("universe".into(), Content::U64(4)),
            ("members".into(), vec![9u32].to_content()),
        ]);
        assert!(SetRepr::from_content(&out_of_universe).is_err());
    }
}
