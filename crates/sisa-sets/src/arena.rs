//! Thread-local scratch-buffer arena for hot set operations.
//!
//! The binary set operations in [`crate::repr`] routinely need short-lived
//! working storage: a sorted copy of an unsorted operand, the member list of a
//! dense operand, a word buffer for a bitvector combine. Allocating a fresh
//! `Vec` for each of those on every operation dominates the host-side cost of
//! small sets, so this module keeps a small per-thread pool of recycled
//! buffers that callers *lease*: [`vertices`] and [`words`] hand out a cleared
//! buffer (reusing a pooled allocation when one is available) wrapped in a
//! guard that returns it to the pool on drop.
//!
//! The `SisaRuntime` and `ShardedEngine` in `sisa-core` lease their scratch
//! through this arena implicitly — every engine-level set operation funnels
//! into [`crate::SetRepr`], whose operand staging runs on leased buffers — and
//! the threaded shard executor gets an independent pool per worker thread for
//! free, with no locks on the hot path.
//!
//! [`stats`] exposes lease/reuse counters so tests (and the benchmark
//! harness) can assert the pool actually recycles instead of silently
//! allocating.

use crate::Vertex;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Maximum number of buffers of each kind the per-thread pool retains;
/// anything beyond this is dropped on release. Binary operations lease at
/// most two vertex buffers at a time, so a small pool suffices even for
/// deeply nested algorithm code.
const POOL_LIMIT: usize = 16;

/// Lease/reuse counters for one thread's arena.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers handed out (both kinds).
    pub leases: u64,
    /// Leases satisfied from the pool instead of a fresh allocation.
    pub reuses: u64,
}

#[derive(Default)]
struct Pool {
    vertex_bufs: Vec<Vec<Vertex>>,
    word_bufs: Vec<Vec<u64>>,
    stats: ArenaStats,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// A leased `Vec<Vertex>` scratch buffer; returns to the pool on drop.
#[derive(Debug)]
pub struct VertexScratch(Vec<Vertex>);

/// A leased `Vec<u64>` word scratch buffer; returns to the pool on drop.
#[derive(Debug)]
pub struct WordScratch(Vec<u64>);

/// Leases a cleared vertex buffer from this thread's pool.
#[must_use]
pub fn vertices() -> VertexScratch {
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        pool.stats.leases += 1;
        match pool.vertex_bufs.pop() {
            Some(buf) => {
                pool.stats.reuses += 1;
                VertexScratch(buf)
            }
            None => VertexScratch(Vec::new()),
        }
    })
}

/// Leases a cleared word buffer from this thread's pool.
#[must_use]
pub fn words() -> WordScratch {
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        pool.stats.leases += 1;
        match pool.word_bufs.pop() {
            Some(buf) => {
                pool.stats.reuses += 1;
                WordScratch(buf)
            }
            None => WordScratch(Vec::new()),
        }
    })
}

/// This thread's cumulative lease/reuse counters.
#[must_use]
pub fn stats() -> ArenaStats {
    POOL.with(|p| p.borrow().stats)
}

/// Resets this thread's lease/reuse counters (the pooled buffers stay).
pub fn reset_stats() {
    POOL.with(|p| p.borrow_mut().stats = ArenaStats::default());
}

impl Deref for VertexScratch {
    type Target = Vec<Vertex>;
    fn deref(&self) -> &Vec<Vertex> {
        &self.0
    }
}

impl DerefMut for VertexScratch {
    fn deref_mut(&mut self) -> &mut Vec<Vertex> {
        &mut self.0
    }
}

impl Drop for VertexScratch {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.0);
        release_vertex(buf);
    }
}

impl Deref for WordScratch {
    type Target = Vec<u64>;
    fn deref(&self) -> &Vec<u64> {
        &self.0
    }
}

impl DerefMut for WordScratch {
    fn deref_mut(&mut self) -> &mut Vec<u64> {
        &mut self.0
    }
}

impl Drop for WordScratch {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.0);
        release_word(buf);
    }
}

fn release_vertex(mut buf: Vec<Vertex>) {
    buf.clear();
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.vertex_bufs.len() < POOL_LIMIT {
            pool.vertex_bufs.push(buf);
        }
    });
}

fn release_word(mut buf: Vec<u64>) {
    buf.clear();
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.word_bufs.len() < POOL_LIMIT {
            pool.word_bufs.push(buf);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_come_back_cleared_and_reuse_their_allocation() {
        reset_stats();
        let first_ptr;
        {
            let mut buf = vertices();
            buf.extend_from_slice(&[1, 2, 3]);
            buf.reserve(1024);
            first_ptr = buf.as_ptr();
        }
        {
            let buf = vertices();
            assert!(buf.is_empty(), "recycled buffers must come back cleared");
            assert_eq!(buf.as_ptr(), first_ptr, "allocation must be recycled");
            assert!(buf.capacity() >= 1024);
        }
        let s = stats();
        assert_eq!(s.leases, 2);
        assert_eq!(s.reuses, 1);
    }

    #[test]
    fn word_buffers_pool_independently() {
        reset_stats();
        {
            let mut w = words();
            w.push(u64::MAX);
        }
        let w = words();
        assert!(w.is_empty());
        assert_eq!(stats().reuses, 1);
    }

    #[test]
    fn concurrent_leases_get_distinct_buffers() {
        let mut a = vertices();
        let mut b = vertices();
        a.push(1);
        b.push(2);
        assert_ne!(a.as_ptr(), b.as_ptr());
        assert_eq!((a.len(), b.len()), (1, 1));
    }

    #[test]
    fn pool_is_bounded() {
        // Leasing far more buffers than the pool limit must not grow the pool
        // without bound: release drops the excess.
        let many: Vec<VertexScratch> = (0..POOL_LIMIT * 3).map(|_| vertices()).collect();
        drop(many);
        POOL.with(|p| {
            assert!(p.borrow().vertex_bufs.len() <= POOL_LIMIT);
        });
    }
}
