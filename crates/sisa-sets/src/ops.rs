//! Set-operation variants corresponding to SISA instructions (Table 5).
//!
//! Every operation in this module is a concrete *variant* of an abstract set
//! operation, distinguished by the representations of its operands and by the
//! set algorithm used:
//!
//! | Paper opcode | Operation | Variant | Function |
//! |---|---|---|---|
//! | `0x0` | `A ∩ B` | SA ∩ SA, merge | [`intersect_merge`] |
//! | `0x1` | `A ∩ B` | SA ∩ SA, galloping | [`intersect_galloping`] |
//! | `0x2` | `A ∩ B` | SA ∩ SA, auto | (chosen by the SCU in `sisa-core`) |
//! | `0x3` | `A ∩ B` | SA ∩ DB, probing | [`intersect_sa_db`] |
//! | `0x4` | `A ∩ B` | DB ∩ DB, bulk bitwise AND | [`intersect_db_db`] |
//! | `0x5` | `A ∪ {x}` | DB, set bit | [`DenseBitVector::insert`] |
//! | `0x6` | `A \ {x}` | DB, clear bit | [`DenseBitVector::remove`] |
//!
//! Union and difference have the analogous merge / galloping / DB variants
//! (§6.2.2), and every operation has a *cardinality-only* twin that avoids
//! materialising the result set (§6.2.3), which SISA exposes as dedicated
//! instructions (e.g. `intersect_count`).

use crate::{DenseBitVector, SortedVertexArray, Vertex};

// ---------------------------------------------------------------------------
// Intersection
// ---------------------------------------------------------------------------

/// Merge-based intersection of two sorted sparse arrays.
///
/// Cost `O(|A| + |B|)`; preferred when the operands have similar sizes because
/// both inputs are simply streamed (§6.2.1).
#[must_use]
pub fn intersect_merge(a: &SortedVertexArray, b: &SortedVertexArray) -> SortedVertexArray {
    let out = intersect_merge_slices(a.as_slice(), b.as_slice());
    SortedVertexArray::from_sorted(out)
}

/// Merge-based intersection over raw sorted slices.
#[must_use]
pub fn intersect_merge_slices(a: &[Vertex], b: &[Vertex]) -> Vec<Vertex> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Cardinality of the merge-based intersection without materialising it.
#[must_use]
pub fn intersect_merge_count(a: &[Vertex], b: &[Vertex]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Galloping (exponential-search based) intersection of two sorted sparse
/// arrays.
///
/// Iterates over the smaller set and gallops through the larger one with an
/// exponential probe from the last match; cost
/// `O(min(|A|,|B|) · log(max(|A|,|B|) / min(|A|,|B|)))`, preferred when one
/// operand is much smaller than the other (§6.2.1).
#[must_use]
pub fn intersect_galloping(a: &SortedVertexArray, b: &SortedVertexArray) -> SortedVertexArray {
    let out = intersect_galloping_slices(a.as_slice(), b.as_slice());
    SortedVertexArray::from_sorted(out)
}

/// Position of the first element of `hay[start..]` that is `>= needle`,
/// found by exponential probing from `start` followed by a binary search of
/// the bracketed window. Returns `(found, pos)` where `found` says whether
/// `hay[pos] == needle`.
///
/// Because the probe restarts from the previous match and the search window
/// shrinks to the bracket the probe established, a sequence of increasing
/// needles costs `O(log gap)` per needle (with cache locality in the bracket)
/// instead of the full-range `O(log |hay|)` a fresh `binary_search` pays —
/// the defining property of galloping that the previous implementation of
/// this variant lacked.
#[inline]
fn gallop_seek(hay: &[Vertex], start: usize, needle: Vertex) -> (bool, usize) {
    let n = hay.len();
    if start >= n {
        return (false, n);
    }
    match hay[start].cmp(&needle) {
        std::cmp::Ordering::Equal => return (true, start),
        std::cmp::Ordering::Greater => return (false, start),
        std::cmp::Ordering::Less => {}
    }
    // Exponential probe: double the step until we overshoot (or run out).
    let mut step = 1usize;
    let mut lo = start; // hay[lo] < needle holds throughout
    while start + step < n && hay[start + step] < needle {
        lo = start + step;
        step <<= 1;
    }
    let hi = (start + step).min(n); // needle <= hay[hi] (or hi == n)
                                    // Binary search of the bracketed window (lo, hi].
    let mut l = lo + 1;
    let mut h = hi;
    while l < h {
        let mid = l + (h - l) / 2;
        if hay[mid] < needle {
            l = mid + 1;
        } else {
            h = mid;
        }
    }
    (l < n && hay[l] == needle, l)
}

/// Galloping intersection over raw sorted slices: exponential probe from the
/// last match with a shrinking search window.
#[must_use]
pub fn intersect_galloping_slices(a: &[Vertex], b: &[Vertex]) -> Vec<Vertex> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len());
    let mut cursor = 0usize;
    for &v in small {
        let (found, pos) = gallop_seek(large, cursor, v);
        if found {
            out.push(v);
            cursor = pos + 1;
        } else {
            cursor = pos;
        }
        if cursor >= large.len() {
            break;
        }
    }
    out
}

/// Cardinality of the galloping intersection without materialising it.
#[must_use]
pub fn intersect_galloping_count(a: &[Vertex], b: &[Vertex]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut count = 0usize;
    let mut cursor = 0usize;
    for &v in small {
        let (found, pos) = gallop_seek(large, cursor, v);
        if found {
            count += 1;
            cursor = pos + 1;
        } else {
            cursor = pos;
        }
        if cursor >= large.len() {
            break;
        }
    }
    count
}

/// The seed implementation of the "galloping" intersection: a full-range
/// `binary_search` per element of the smaller operand, `O(m · log n)` with no
/// locality. Kept as the scalar reference the differential tests and the
/// benchmark baseline pin the true galloping kernel against.
#[must_use]
pub fn intersect_galloping_slices_reference(a: &[Vertex], b: &[Vertex]) -> Vec<Vertex> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len());
    for &v in small {
        if large.binary_search(&v).is_ok() {
            out.push(v);
        }
    }
    out
}

/// Cardinality twin of [`intersect_galloping_slices_reference`].
#[must_use]
pub fn intersect_galloping_count_reference(a: &[Vertex], b: &[Vertex]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small
        .iter()
        .filter(|&&v| large.binary_search(&v).is_ok())
        .count()
}

/// Intersection of a sparse array (sorted or unsorted) with a dense bitvector.
///
/// Iterates over the array and probes the bitvector, `O(|A|)` with `O(1)`
/// probes (instruction `0x3`). The output preserves the order of `a`.
#[must_use]
pub fn intersect_sa_db(a: &[Vertex], b: &DenseBitVector) -> Vec<Vertex> {
    a.iter().copied().filter(|&v| b.contains(v)).collect()
}

/// Cardinality of the SA ∩ DB intersection.
#[must_use]
pub fn intersect_sa_db_count(a: &[Vertex], b: &DenseBitVector) -> usize {
    a.iter().filter(|&&v| b.contains(v)).count()
}

/// Intersection of two dense bitvectors via bulk bitwise AND (instruction
/// `0x4`, executed with SISA-PUM in hardware).
#[must_use]
pub fn intersect_db_db(a: &DenseBitVector, b: &DenseBitVector) -> DenseBitVector {
    a.and(b)
}

/// Cardinality of the DB ∩ DB intersection.
#[must_use]
pub fn intersect_db_db_count(a: &DenseBitVector, b: &DenseBitVector) -> usize {
    a.and_count(b)
}

// ---------------------------------------------------------------------------
// Union
// ---------------------------------------------------------------------------

/// Merge-based union of two sorted sparse arrays, `O(|A| + |B|)`.
#[must_use]
pub fn union_merge(a: &SortedVertexArray, b: &SortedVertexArray) -> SortedVertexArray {
    SortedVertexArray::from_sorted(union_merge_slices(a.as_slice(), b.as_slice()))
}

/// Merge-based union over raw sorted slices.
#[must_use]
pub fn union_merge_slices(a: &[Vertex], b: &[Vertex]) -> Vec<Vertex> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Cardinality of the union of two sorted slices without materialising it.
#[must_use]
pub fn union_merge_count(a: &[Vertex], b: &[Vertex]) -> usize {
    a.len() + b.len() - intersect_merge_count(a, b)
}

/// Union of a sparse array with a dense bitvector, producing a dense
/// bitvector (bits of `a`'s members are set into a copy of `b`).
#[must_use]
pub fn union_sa_db(a: &[Vertex], b: &DenseBitVector) -> DenseBitVector {
    let mut out = b.clone();
    for &v in a {
        out.insert(v);
    }
    out
}

/// Union of two dense bitvectors via bulk bitwise OR (SISA-PUM).
#[must_use]
pub fn union_db_db(a: &DenseBitVector, b: &DenseBitVector) -> DenseBitVector {
    a.or(b)
}

/// Cardinality of the DB ∪ DB union.
#[must_use]
pub fn union_db_db_count(a: &DenseBitVector, b: &DenseBitVector) -> usize {
    a.or_count(b)
}

// ---------------------------------------------------------------------------
// Difference
// ---------------------------------------------------------------------------

/// Merge-based difference `A \ B` of two sorted sparse arrays, `O(|A| + |B|)`.
#[must_use]
pub fn difference_merge(a: &SortedVertexArray, b: &SortedVertexArray) -> SortedVertexArray {
    SortedVertexArray::from_sorted(difference_merge_slices(a.as_slice(), b.as_slice()))
}

/// Merge-based difference over raw sorted slices.
#[must_use]
pub fn difference_merge_slices(a: &[Vertex], b: &[Vertex]) -> Vec<Vertex> {
    let mut out = Vec::with_capacity(a.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out
}

/// Galloping difference `A \ B`: iterate over `A`, gallop through `B` with an
/// exponential probe from the last probe position.
///
/// Cost `O(|A| · log(|B| / |A|))`; preferred when `|A| ≪ |B|`.
#[must_use]
pub fn difference_galloping_slices(a: &[Vertex], b: &[Vertex]) -> Vec<Vertex> {
    let mut out = Vec::with_capacity(a.len());
    let mut cursor = 0usize;
    for (i, &v) in a.iter().enumerate() {
        if cursor >= b.len() {
            out.extend_from_slice(&a[i..]);
            break;
        }
        let (found, pos) = gallop_seek(b, cursor, v);
        if found {
            cursor = pos + 1;
        } else {
            cursor = pos;
            out.push(v);
        }
    }
    out
}

/// The seed implementation of the galloping difference (full-range
/// `binary_search` per element); the scalar reference for differential tests.
#[must_use]
pub fn difference_galloping_slices_reference(a: &[Vertex], b: &[Vertex]) -> Vec<Vertex> {
    a.iter()
        .copied()
        .filter(|v| b.binary_search(v).is_err())
        .collect()
}

/// Cardinality of `A \ B` over sorted slices.
#[must_use]
pub fn difference_merge_count(a: &[Vertex], b: &[Vertex]) -> usize {
    a.len() - intersect_merge_count(a, b)
}

/// Difference of a sparse array and a dense bitvector: `A \ B` keeps the
/// members of `a` whose bit is *not* set in `b`.
#[must_use]
pub fn difference_sa_db(a: &[Vertex], b: &DenseBitVector) -> Vec<Vertex> {
    a.iter().copied().filter(|&v| !b.contains(v)).collect()
}

/// Difference of two dense bitvectors, `A ∧ ¬B`, computed as bulk bitwise
/// operations exactly as SISA-PUM does (§8.1: `A \ B = A ∩ B'`).
#[must_use]
pub fn difference_db_db(a: &DenseBitVector, b: &DenseBitVector) -> DenseBitVector {
    a.and_not(b)
}

/// Cardinality of the DB \ DB difference.
#[must_use]
pub fn difference_db_db_count(a: &DenseBitVector, b: &DenseBitVector) -> usize {
    a.and_not_count(b)
}

// ---------------------------------------------------------------------------
// Membership
// ---------------------------------------------------------------------------

/// Membership of `v` in a sorted sparse array (`O(log |A|)`).
#[must_use]
pub fn member_sorted(a: &[Vertex], v: Vertex) -> bool {
    a.binary_search(&v).is_ok()
}

/// Membership of `v` in an unsorted sparse array (`O(|A|)` linear scan).
#[must_use]
pub fn member_unsorted(a: &[Vertex], v: Vertex) -> bool {
    a.contains(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sa(v: &[Vertex]) -> SortedVertexArray {
        SortedVertexArray::from_unsorted(v.to_vec())
    }

    #[test]
    fn merge_and_galloping_intersections_agree() {
        let a = sa(&[1, 4, 7, 9, 200, 300]);
        let b = sa(&[4, 9, 10, 300, 301]);
        let m = intersect_merge(&a, &b);
        let g = intersect_galloping(&a, &b);
        assert_eq!(m, g);
        assert_eq!(m.as_slice(), &[4, 9, 300]);
        assert_eq!(intersect_merge_count(a.as_slice(), b.as_slice()), 3);
        assert_eq!(intersect_galloping_count(a.as_slice(), b.as_slice()), 3);
    }

    #[test]
    fn intersections_with_empty_sets() {
        let a = sa(&[1, 2, 3]);
        let empty = sa(&[]);
        assert!(intersect_merge(&a, &empty).is_empty());
        assert!(intersect_galloping(&empty, &a).is_empty());
        assert_eq!(intersect_merge_count(&[], &[]), 0);
    }

    #[test]
    fn sa_db_intersection_and_count() {
        let db = DenseBitVector::from_members(100, [2u32, 4, 6, 8]);
        let arr = [1u32, 2, 3, 4, 50];
        assert_eq!(intersect_sa_db(&arr, &db), vec![2, 4]);
        assert_eq!(intersect_sa_db_count(&arr, &db), 2);
    }

    #[test]
    fn db_db_intersection_matches_sparse() {
        let a_members = vec![1u32, 5, 64, 65, 99];
        let b_members = vec![5u32, 64, 98, 99];
        let a = DenseBitVector::from_members(128, a_members.clone());
        let b = DenseBitVector::from_members(128, b_members.clone());
        let expected = intersect_merge_slices(&a_members, &b_members);
        assert_eq!(intersect_db_db(&a, &b).to_sorted_vec(), expected);
        assert_eq!(intersect_db_db_count(&a, &b), expected.len());
    }

    #[test]
    fn union_variants_agree() {
        let a = sa(&[1, 3, 5]);
        let b = sa(&[2, 3, 6]);
        assert_eq!(union_merge(&a, &b).as_slice(), &[1, 2, 3, 5, 6]);
        assert_eq!(union_merge_count(a.as_slice(), b.as_slice()), 5);
        let da = DenseBitVector::from_sorted_slice(10, a.as_slice());
        let db = DenseBitVector::from_sorted_slice(10, b.as_slice());
        assert_eq!(union_db_db(&da, &db).to_sorted_vec(), vec![1, 2, 3, 5, 6]);
        assert_eq!(union_db_db_count(&da, &db), 5);
        assert_eq!(
            union_sa_db(a.as_slice(), &db).to_sorted_vec(),
            vec![1, 2, 3, 5, 6]
        );
    }

    #[test]
    fn difference_variants_agree() {
        let a = sa(&[1, 2, 3, 4, 5]);
        let b = sa(&[2, 4, 6]);
        assert_eq!(difference_merge(&a, &b).as_slice(), &[1, 3, 5]);
        assert_eq!(
            difference_galloping_slices(a.as_slice(), b.as_slice()),
            vec![1, 3, 5]
        );
        assert_eq!(difference_merge_count(a.as_slice(), b.as_slice()), 3);
        let da = DenseBitVector::from_sorted_slice(10, a.as_slice());
        let db = DenseBitVector::from_sorted_slice(10, b.as_slice());
        assert_eq!(difference_db_db(&da, &db).to_sorted_vec(), vec![1, 3, 5]);
        assert_eq!(difference_db_db_count(&da, &db), 3);
        assert_eq!(difference_sa_db(a.as_slice(), &db), vec![1, 3, 5]);
    }

    #[test]
    fn membership_helpers() {
        assert!(member_sorted(&[1, 5, 9], 5));
        assert!(!member_sorted(&[1, 5, 9], 6));
        assert!(member_unsorted(&[9, 1, 5], 5));
        assert!(!member_unsorted(&[9, 1, 5], 2));
    }

    #[test]
    fn difference_with_superset_is_empty() {
        let a = sa(&[1, 2, 3]);
        let b = sa(&[0, 1, 2, 3, 4]);
        assert!(difference_merge(&a, &b).is_empty());
        assert_eq!(difference_merge_count(a.as_slice(), b.as_slice()), 0);
    }
}
