//! Instrumented set operations that report work performed.
//!
//! The SISA paper's theoretical analysis (§7, Table 6) distinguishes the cost
//! of merge-based and galloping set algorithms. To reproduce that table
//! empirically, the benchmark harness needs operation *counts*, not wall-clock
//! time. This module provides twins of the hot set operations that return an
//! [`OpCost`] alongside the result: the number of element comparisons, the
//! number of elements read from the inputs, and the number of 64-bit words
//! touched (relevant for dense bitvectors).

use crate::{DenseBitVector, Vertex};

/// Work performed by a single instrumented set operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCost {
    /// Element-to-element comparisons (merge steps or binary-search probes).
    pub comparisons: u64,
    /// Elements read from the sparse-array inputs.
    pub elements_read: u64,
    /// 64-bit words touched in dense-bitvector inputs/outputs.
    pub words_touched: u64,
}

impl OpCost {
    /// Combines two costs, summing every component.
    #[must_use]
    pub fn merge(self, other: OpCost) -> OpCost {
        OpCost {
            comparisons: self.comparisons + other.comparisons,
            elements_read: self.elements_read + other.elements_read,
            words_touched: self.words_touched + other.words_touched,
        }
    }

    /// Adds another cost in place.
    pub fn add(&mut self, other: OpCost) {
        *self = self.merge(other);
    }

    /// Total abstract work units (comparisons + words touched), the quantity
    /// plotted by the Table 6 harness.
    #[must_use]
    pub fn work(&self) -> u64 {
        self.comparisons + self.words_touched
    }
}

/// Merge intersection with instrumentation.
#[must_use]
pub fn intersect_merge_counted(a: &[Vertex], b: &[Vertex]) -> (Vec<Vertex>, OpCost) {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let mut cost = OpCost::default();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        cost.comparisons += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    cost.elements_read = (i + j) as u64;
    (out, cost)
}

/// Galloping intersection with instrumentation: exponential probe from the
/// last match plus a binary search of the bracketed window, mirroring
/// [`crate::ops::intersect_galloping_slices`]. Every element comparison —
/// probe or window-search step — is counted.
#[must_use]
pub fn intersect_galloping_counted(a: &[Vertex], b: &[Vertex]) -> (Vec<Vertex>, OpCost) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len());
    let mut cost = OpCost {
        elements_read: small.len() as u64,
        ..OpCost::default()
    };
    let mut cursor = 0usize;
    for &v in small {
        let (found, pos, probes) = gallop_seek_counted(large, cursor, v);
        cost.comparisons += probes;
        if found {
            out.push(v);
            cursor = pos + 1;
        } else {
            cursor = pos;
        }
        if cursor >= large.len() {
            break;
        }
    }
    (out, cost)
}

/// The seed's "galloping" intersection with instrumentation: a full-range
/// binary search per element, `O(m · log n)`. Kept so the galloping
/// regression tests can quantify what the exponential probe saves.
#[must_use]
pub fn intersect_galloping_reference_counted(a: &[Vertex], b: &[Vertex]) -> (Vec<Vertex>, OpCost) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len());
    let mut cost = OpCost {
        elements_read: small.len() as u64,
        ..OpCost::default()
    };
    for &v in small {
        let (found, probes) = binary_search_counted(large, v);
        cost.comparisons += probes;
        if found {
            out.push(v);
        }
    }
    (out, cost)
}

/// Merge difference `A \ B` with instrumentation.
#[must_use]
pub fn difference_merge_counted(a: &[Vertex], b: &[Vertex]) -> (Vec<Vertex>, OpCost) {
    let mut out = Vec::with_capacity(a.len());
    let mut cost = OpCost::default();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        cost.comparisons += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    cost.elements_read = a.len() as u64 + j as u64;
    (out, cost)
}

/// Dense-bitvector AND with instrumentation (words touched only; there are no
/// element comparisons in bulk bitwise execution).
#[must_use]
pub fn intersect_db_counted(a: &DenseBitVector, b: &DenseBitVector) -> (DenseBitVector, OpCost) {
    let out = a.and(b);
    let cost = OpCost {
        comparisons: 0,
        elements_read: 0,
        words_touched: (a.word_count() + b.word_count() + out.word_count()) as u64,
    };
    (out, cost)
}

/// SA ∩ DB probing with instrumentation.
#[must_use]
pub fn intersect_sa_db_counted(a: &[Vertex], b: &DenseBitVector) -> (Vec<Vertex>, OpCost) {
    let out: Vec<Vertex> = a.iter().copied().filter(|&v| b.contains(v)).collect();
    let cost = OpCost {
        comparisons: a.len() as u64,
        elements_read: a.len() as u64,
        words_touched: a.len() as u64,
    };
    (out, cost)
}

/// Instrumented twin of `ops::gallop_seek`: first position in `hay[start..]`
/// whose element is `>= needle`, with every comparison counted.
fn gallop_seek_counted(hay: &[Vertex], start: usize, needle: Vertex) -> (bool, usize, u64) {
    let n = hay.len();
    if start >= n {
        return (false, n, 0);
    }
    let mut probes = 1u64;
    match hay[start].cmp(&needle) {
        std::cmp::Ordering::Equal => return (true, start, probes),
        std::cmp::Ordering::Greater => return (false, start, probes),
        std::cmp::Ordering::Less => {}
    }
    let mut step = 1usize;
    let mut lo = start;
    loop {
        let probe = start + step;
        if probe >= n {
            break;
        }
        probes += 1;
        if hay[probe] >= needle {
            break;
        }
        lo = probe;
        step <<= 1;
    }
    let hi = (start + step).min(n);
    let mut l = lo + 1;
    let mut h = hi;
    while l < h {
        let mid = l + (h - l) / 2;
        probes += 1;
        if hay[mid] < needle {
            l = mid + 1;
        } else {
            h = mid;
        }
    }
    (l < n && hay[l] == needle, l, probes)
}

fn binary_search_counted(haystack: &[Vertex], needle: Vertex) -> (bool, u64) {
    let mut lo = 0usize;
    let mut hi = haystack.len();
    let mut probes = 0u64;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        probes += 1;
        match haystack[mid].cmp(&needle) {
            std::cmp::Ordering::Equal => return (true, probes),
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
        }
    }
    (false, probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn counted_results_match_uncounted() {
        let a: Vec<Vertex> = (0..200).step_by(3).collect();
        let b: Vec<Vertex> = (0..200).step_by(5).collect();
        let (m, _) = intersect_merge_counted(&a, &b);
        let (g, _) = intersect_galloping_counted(&a, &b);
        let expected = ops::intersect_merge_slices(&a, &b);
        assert_eq!(m, expected);
        assert_eq!(g, expected);
        let (d, _) = difference_merge_counted(&a, &b);
        assert_eq!(d, ops::difference_merge_slices(&a, &b));
    }

    #[test]
    fn merge_cost_is_linear_and_galloping_logarithmic() {
        // A tiny set whose members are spread across a huge set: merge must
        // stream through (almost) all of the large set, while galloping pays
        // at most 2·log₂(gap) + 2 comparisons per element — the exponential
        // probe plus the binary search of the window it bracketed (Table 5
        // rationale). Here gap = 512, so ≤ 20 comparisons per element.
        let small: Vec<Vertex> = (0..4096).step_by(512).collect();
        let large: Vec<Vertex> = (0..4096).collect();
        let (_, merge_cost) = intersect_merge_counted(&small, &large);
        let (_, gallop_cost) = intersect_galloping_counted(&small, &large);
        assert!(gallop_cost.comparisons <= 8 * 20);
        assert!(merge_cost.comparisons >= 3072);
        assert!(gallop_cost.comparisons < merge_cost.comparisons);
    }

    #[test]
    fn galloping_beats_merge_and_the_seed_reference_on_64_to_1_skew() {
        // The regression the true galloping kernel was built for: on a 1:64
        // size skew the exponential probe from the last match pays
        // O(log(gap)) per element, beating both the linear merge and the
        // seed's full-range binary search per element.
        // The +17 offset keeps the needles off the binary-search lattice
        // (odd values are only found at the deepest probe level), so the
        // reference cost reflects its true `log n` per element.
        let large: Vec<Vertex> = (0..65536).collect();
        let small: Vec<Vertex> = (0..65536 - 64).step_by(64).map(|v| v + 17).collect();
        assert_eq!(small.len() * 64, large.len() - 64);
        let (merge_out, merge_cost) = intersect_merge_counted(&small, &large);
        let (gallop_out, gallop_cost) = intersect_galloping_counted(&small, &large);
        let (reference_out, reference_cost) = intersect_galloping_reference_counted(&small, &large);
        assert_eq!(gallop_out, merge_out);
        assert_eq!(gallop_out, reference_out);
        assert!(
            gallop_cost.comparisons * 4 < merge_cost.comparisons,
            "galloping ({}) must beat merge ({}) by a wide margin on 1:64 skew",
            gallop_cost.comparisons,
            merge_cost.comparisons
        );
        assert!(
            gallop_cost.comparisons < reference_cost.comparisons,
            "the exponential probe ({}) must beat the seed's per-element \
             binary search ({})",
            gallop_cost.comparisons,
            reference_cost.comparisons
        );
    }

    #[test]
    fn merge_beats_per_element_search_for_similar_sizes() {
        // Table 6 rationale for the dispatch threshold: at similar sizes the
        // linear merge beats looking every element up in the other operand,
        // which is why `repr::choose_host_kernel` only gallops on heavy size
        // skew. (The cursor-local galloping kernel itself degrades gracefully
        // here — it stays within 2× of merge rather than blowing up — but
        // merge remains the cheaper similar-size kernel.)
        let a: Vec<Vertex> = (0..1000).step_by(2).collect();
        let b: Vec<Vertex> = (0..1000).step_by(3).collect();
        let (_, merge_cost) = intersect_merge_counted(&a, &b);
        let (_, reference_cost) = intersect_galloping_reference_counted(&a, &b);
        let (_, gallop_cost) = intersect_galloping_counted(&a, &b);
        assert!(merge_cost.comparisons < reference_cost.comparisons);
        assert!(gallop_cost.comparisons <= 2 * merge_cost.comparisons);
    }

    #[test]
    fn db_counted_reports_words() {
        let a = DenseBitVector::from_members(1024, (0..512).step_by(2).map(|v| v as Vertex));
        let b = DenseBitVector::from_members(1024, (0..512).step_by(3).map(|v| v as Vertex));
        let (out, cost) = intersect_db_counted(&a, &b);
        assert_eq!(out.to_sorted_vec(), {
            let av = a.to_sorted_vec();
            let bv = b.to_sorted_vec();
            ops::intersect_merge_slices(&av, &bv)
        });
        assert_eq!(cost.words_touched, 3 * 16);
        assert_eq!(cost.comparisons, 0);
    }

    #[test]
    fn op_cost_merge_and_work() {
        let a = OpCost {
            comparisons: 3,
            elements_read: 5,
            words_touched: 7,
        };
        let b = OpCost {
            comparisons: 1,
            elements_read: 1,
            words_touched: 1,
        };
        let c = a.merge(b);
        assert_eq!(c.comparisons, 4);
        assert_eq!(c.elements_read, 6);
        assert_eq!(c.words_touched, 8);
        assert_eq!(c.work(), 12);
    }

    #[test]
    fn sa_db_counted_matches() {
        let db = DenseBitVector::from_members(64, [1u32, 2, 3]);
        let (out, cost) = intersect_sa_db_counted(&[0, 1, 2, 5], &db);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(cost.comparisons, 4);
    }
}
