//! Degeneracy orderings, k-cores and degeneracy-ordered orientation.
//!
//! Several of the paper's set-centric formulations (k-clique listing,
//! Bron–Kerbosch with degeneracy, k-clique-stars) rely on ordering the
//! vertices by *degeneracy* and orienting edges from earlier to later vertices
//! (§5.1.3, §5.1.5, §7.1). This module provides:
//!
//! * [`degeneracy_order`] — the exact peeling algorithm (repeatedly remove a
//!   minimum-degree vertex), which also yields the graph's degeneracy `c`.
//! * [`approximate_degeneracy_order`] — the paper's Algorithm 6, a
//!   set-centric `O(log n)`-round approximation with ratio `2 + ε`.
//! * [`k_core`] — the maximal subgraph with minimum degree ≥ `k`, derived
//!   from the peeling order (§5.1.5).

use crate::{CsrGraph, Vertex};

/// The result of computing a degeneracy ordering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegeneracyOrdering {
    /// `order[i]` is the i-th vertex in the ordering (peeled i-th).
    pub order: Vec<Vertex>,
    /// `rank[v]` is the position of vertex `v` in `order`.
    pub rank: Vec<usize>,
    /// The degeneracy `c`: the maximum, over peeling steps, of the degree of
    /// the peeled vertex within the remaining graph. Every graph has a vertex
    /// of degree ≤ `c` in every subgraph.
    pub degeneracy: usize,
}

impl DegeneracyOrdering {
    /// Orients `g` along this ordering: arc `u → v` kept iff
    /// `rank[u] < rank[v]`. Out-degrees are then bounded by the degeneracy
    /// (for the exact ordering).
    #[must_use]
    pub fn orient(&self, g: &CsrGraph) -> CsrGraph {
        g.oriented_by(&self.rank)
    }
}

/// Computes the exact degeneracy ordering by iterative minimum-degree peeling
/// (bucket queue, `O(n + m)` time).
#[must_use]
pub fn degeneracy_order(g: &CsrGraph) -> DegeneracyOrdering {
    let n = g.num_vertices();
    let mut degree: Vec<usize> = g.degree_sequence();
    let max_deg = degree.iter().copied().max().unwrap_or(0);

    // Bucket queue: buckets[d] holds vertices of current degree d.
    let mut buckets: Vec<Vec<Vertex>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v as Vertex);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut rank = vec![0usize; n];
    let mut degeneracy = 0usize;
    let mut cursor = 0usize;

    for step in 0..n {
        // Find the minimum-degree alive vertex. Buckets may contain stale
        // entries (a vertex whose degree has since decreased keeps its old
        // entry); those are discarded on pop because a fresh entry was pushed
        // into the lower bucket at decrement time, and the cursor is lowered
        // whenever that happens, so no valid entry is ever skipped.
        let v = loop {
            while buckets[cursor].is_empty() {
                cursor += 1;
                debug_assert!(
                    cursor <= max_deg,
                    "ran out of buckets with vertices remaining"
                );
            }
            let candidate = buckets[cursor]
                .pop()
                .expect("cursor points at a non-empty bucket");
            if !removed[candidate as usize] && degree[candidate as usize] == cursor {
                break candidate;
            }
        };
        removed[v as usize] = true;
        degeneracy = degeneracy.max(degree[v as usize]);
        rank[v as usize] = step;
        order.push(v);
        for &w in g.neighbors(v) {
            let w = w as usize;
            if !removed[w] {
                degree[w] -= 1;
                buckets[degree[w]].push(w as Vertex);
                if degree[w] < cursor {
                    cursor = degree[w];
                }
            }
        }
    }

    DegeneracyOrdering {
        order,
        rank,
        degeneracy,
    }
}

/// Computes the paper's approximate degeneracy ordering (Algorithm 6).
///
/// In each round, all vertices whose degree is at most `(1 + eps)` times the
/// current average degree are assigned the current round number and removed;
/// the algorithm terminates in `O(log n)` rounds and approximates the
/// degeneracy ordering within a factor `2 + eps`. Vertices removed in the same
/// round share a rank band; ties are broken by vertex id to make the ordering
/// total.
///
/// Returns the ordering together with the number of rounds executed.
#[must_use]
pub fn approximate_degeneracy_order(g: &CsrGraph, eps: f64) -> (DegeneracyOrdering, usize) {
    assert!(eps > 0.0, "epsilon must be positive");
    let n = g.num_vertices();
    let mut alive: Vec<bool> = vec![true; n];
    let mut degree: Vec<usize> = g.degree_sequence();
    let mut alive_count = n;
    let mut round = 0usize;
    let mut round_of: Vec<usize> = vec![0usize; n];

    while alive_count > 0 {
        let total_degree: usize = (0..n).filter(|&v| alive[v]).map(|v| degree[v]).sum();
        let threshold = (1.0 + eps) * total_degree as f64 / alive_count as f64;
        // X = {v ∈ V : |N(v)| ≤ (1+eps) * avg}
        let peel: Vec<usize> = (0..n)
            .filter(|&v| alive[v] && (degree[v] as f64) <= threshold)
            .collect();
        // The threshold is at least the average degree, so at least one alive
        // vertex always qualifies and the loop terminates.
        for &v in &peel {
            round_of[v] = round;
            alive[v] = false;
            alive_count -= 1;
        }
        for &v in &peel {
            for &w in g.neighbors(v as Vertex) {
                let w = w as usize;
                if alive[w] {
                    degree[w] = degree[w].saturating_sub(1);
                }
            }
        }
        round += 1;
    }

    // Total order: sort by (round, vertex id).
    let mut order: Vec<Vertex> = (0..n as Vertex).collect();
    order.sort_by_key(|&v| (round_of[v as usize], v));
    let mut rank = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i;
    }
    // The degeneracy estimate is the maximum out-degree under the orientation.
    let oriented = g.oriented_by(&rank);
    let degeneracy = oriented.max_degree();
    (
        DegeneracyOrdering {
            order,
            rank,
            degeneracy,
        },
        round,
    )
}

/// Returns the vertices of the `k`-core of `g`: the maximal subgraph in which
/// every vertex has degree at least `k` (within the subgraph). The result is
/// sorted by vertex id and may be empty.
#[must_use]
pub fn k_core(g: &CsrGraph, k: usize) -> Vec<Vertex> {
    let n = g.num_vertices();
    let mut degree = g.degree_sequence();
    let mut removed = vec![false; n];
    let mut stack: Vec<usize> = (0..n).filter(|&v| degree[v] < k).collect();
    for &v in &stack {
        removed[v] = true;
    }
    while let Some(v) = stack.pop() {
        for &w in g.neighbors(v as Vertex) {
            let w = w as usize;
            if !removed[w] {
                degree[w] -= 1;
                if degree[w] < k {
                    removed[w] = true;
                    stack.push(w);
                }
            }
        }
    }
    (0..n)
        .filter(|&v| !removed[v])
        .map(|v| v as Vertex)
        .collect()
}

/// The core number of every vertex: the largest `k` such that the vertex
/// belongs to the `k`-core. Computed from the exact peeling order.
#[must_use]
pub fn core_numbers(g: &CsrGraph) -> Vec<usize> {
    let n = g.num_vertices();
    let ordering = degeneracy_order(g);
    let mut core = vec![0usize; n];
    let mut removed = vec![false; n];
    let mut current = 0usize;
    // Replay the peeling: the core number of v is the degree of v among
    // not-yet-removed vertices at its removal time, maxed monotonically.
    for &v in &ordering.order {
        let remaining_degree = g
            .neighbors(v)
            .iter()
            .filter(|&&w| !removed[w as usize])
            .count();
        current = current.max(remaining_degree);
        core[v as usize] = current;
        removed[v as usize] = true;
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn star(n: usize) -> CsrGraph {
        let edges: Vec<(Vertex, Vertex)> = (1..n as Vertex).map(|v| (0, v)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    fn complete(n: usize) -> CsrGraph {
        let mut edges = Vec::new();
        for u in 0..n as Vertex {
            for v in (u + 1)..n as Vertex {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn star_graph_has_degeneracy_one() {
        let g = star(50);
        let ord = degeneracy_order(&g);
        assert_eq!(ord.degeneracy, 1);
        // The hub is peeled among the last vertices: once only one leaf
        // remains, hub and leaf both have degree 1 and ties are arbitrary.
        assert!(ord.order[48..].contains(&0));
        assert_eq!(ord.order.len(), 50);
    }

    #[test]
    fn complete_graph_has_degeneracy_n_minus_one() {
        let g = complete(8);
        let ord = degeneracy_order(&g);
        assert_eq!(ord.degeneracy, 7);
        // The orientation bounds out-degree by the degeneracy.
        let oriented = ord.orient(&g);
        assert!(oriented.max_degree() <= 7);
        assert_eq!(oriented.num_edges(), g.num_edges());
    }

    #[test]
    fn rank_is_a_permutation_consistent_with_order() {
        let g = generators::erdos_renyi(200, 0.05, 7);
        let ord = degeneracy_order(&g);
        let mut seen = [false; 200];
        for &v in &ord.order {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        for (i, &v) in ord.order.iter().enumerate() {
            assert_eq!(ord.rank[v as usize], i);
        }
    }

    #[test]
    fn oriented_out_degree_bounded_by_degeneracy() {
        let g = generators::barabasi_albert(300, 4, 11);
        let ord = degeneracy_order(&g);
        let oriented = ord.orient(&g);
        assert!(oriented.max_degree() <= ord.degeneracy);
        assert_eq!(oriented.num_edges(), g.num_edges());
    }

    #[test]
    fn approximate_order_bounds_and_rounds() {
        let g = generators::barabasi_albert(400, 3, 3);
        let exact = degeneracy_order(&g);
        let (approx, rounds) = approximate_degeneracy_order(&g, 0.1);
        // Approximation guarantee: out-degree under approx orientation is at
        // most (2 + eps) * c (we allow a little slack for the tie-breaking).
        let bound = ((2.0 + 0.1) * exact.degeneracy as f64).ceil() as usize + 1;
        assert!(
            approx.degeneracy <= bound,
            "{} > {}",
            approx.degeneracy,
            bound
        );
        // O(log n) rounds in practice.
        assert!(rounds <= 64);
        assert_eq!(approx.order.len(), 400);
    }

    #[test]
    fn k_core_of_clique_with_tail() {
        // Clique {0,1,2,3} plus a path 3-4-5.
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
        );
        assert_eq!(k_core(&g, 3), vec![0, 1, 2, 3]);
        assert_eq!(k_core(&g, 1).len(), 6);
        assert!(k_core(&g, 4).is_empty());
    }

    #[test]
    fn core_numbers_match_k_core_membership() {
        let g = generators::erdos_renyi(150, 0.08, 99);
        let cores = core_numbers(&g);
        for k in 1..=4 {
            let members = k_core(&g, k);
            for v in g.vertices() {
                let in_core = members.binary_search(&v).is_ok();
                assert_eq!(
                    cores[v as usize] >= k,
                    in_core,
                    "vertex {v} core {} vs k {k}",
                    cores[v as usize]
                );
            }
        }
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let empty = CsrGraph::from_edges(0, &[]);
        assert_eq!(degeneracy_order(&empty).degeneracy, 0);
        let single = CsrGraph::from_edges(1, &[]);
        let ord = degeneracy_order(&single);
        assert_eq!(ord.order, vec![0]);
        assert_eq!(ord.degeneracy, 0);
        assert!(k_core(&single, 1).is_empty());
    }
}
