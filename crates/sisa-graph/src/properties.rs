//! Reference implementations of simple graph properties.
//!
//! These are *oracles*: deliberately simple, obviously-correct implementations
//! used by tests and by the dataset registry to validate both the generators
//! and the (much faster, much more elaborate) mining algorithms in
//! `sisa-algorithms`. They are not tuned and are not part of the evaluated
//! system.

use crate::{CsrGraph, Vertex};

/// Counts the triangles of an undirected graph by checking, for every edge
/// `(u, v)` with `u < v`, the common neighbours `w > v`.
#[must_use]
pub fn triangle_count(g: &CsrGraph) -> u64 {
    let mut count = 0u64;
    for (u, v) in g.edges() {
        let nu = g.neighbors(u);
        let nv = g.neighbors(v);
        let (mut i, mut j) = (0usize, 0usize);
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if nu[i] > v {
                        count += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    count
}

/// The global clustering coefficient: `3 * triangles / number of wedges`.
///
/// Returns 0 for graphs without wedges (paths of length two).
#[must_use]
pub fn global_clustering_coefficient(g: &CsrGraph) -> f64 {
    let wedges: u64 = g
        .vertices()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        return 0.0;
    }
    3.0 * triangle_count(g) as f64 / wedges as f64
}

/// Connected components by breadth-first search; returns the component id of
/// every vertex (ids are arbitrary but contiguous from 0).
#[must_use]
pub fn connected_components(g: &CsrGraph) -> Vec<usize> {
    let n = g.num_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut next_comp = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = next_comp;
        queue.push_back(start as Vertex);
        while let Some(u) = queue.pop_front() {
            for &w in g.neighbors(u) {
                if comp[w as usize] == usize::MAX {
                    comp[w as usize] = next_comp;
                    queue.push_back(w);
                }
            }
        }
        next_comp += 1;
    }
    comp
}

/// Number of connected components.
#[must_use]
pub fn num_connected_components(g: &CsrGraph) -> usize {
    connected_components(g)
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m + 1)
}

/// Whether `vertices` forms a clique in `g` (every pair adjacent).
#[must_use]
pub fn is_clique(g: &CsrGraph, vertices: &[Vertex]) -> bool {
    for (i, &u) in vertices.iter().enumerate() {
        for &v in &vertices[i + 1..] {
            if !g.has_edge(u, v) && !g.has_edge(v, u) {
                return false;
            }
        }
    }
    true
}

/// Whether `vertices` is a *maximal* clique of the undirected graph `g`: it is
/// a clique and no other vertex is adjacent to all of its members.
#[must_use]
pub fn is_maximal_clique(g: &CsrGraph, vertices: &[Vertex]) -> bool {
    if vertices.is_empty() || !is_clique(g, vertices) {
        return false;
    }
    let member: std::collections::HashSet<Vertex> = vertices.iter().copied().collect();
    for w in g.vertices() {
        if member.contains(&w) {
            continue;
        }
        if vertices.iter().all(|&u| g.has_edge(w, u)) {
            return false;
        }
    }
    true
}

/// Counts the k-cliques of an undirected graph by brute-force extension.
///
/// Exponential; intended for small graphs in tests only.
#[must_use]
pub fn brute_force_k_clique_count(g: &CsrGraph, k: usize) -> u64 {
    if k == 0 {
        return 1;
    }
    if k == 1 {
        return g.num_vertices() as u64;
    }
    let mut count = 0u64;
    let mut current: Vec<Vertex> = Vec::with_capacity(k);
    fn extend(g: &CsrGraph, k: usize, start: Vertex, current: &mut Vec<Vertex>, count: &mut u64) {
        if current.len() == k {
            *count += 1;
            return;
        }
        for v in start..g.num_vertices() as Vertex {
            if current.iter().all(|&u| g.has_edge(u, v)) {
                current.push(v);
                extend(g, k, v + 1, current, count);
                current.pop();
            }
        }
    }
    extend(g, k, 0, &mut current, &mut count);
    count
}

/// Enumerates all maximal cliques by brute force (checks every subset
/// extension); for tiny test graphs only. Each clique is returned sorted.
#[must_use]
pub fn brute_force_maximal_cliques(g: &CsrGraph) -> Vec<Vec<Vertex>> {
    let n = g.num_vertices();
    assert!(
        n <= 24,
        "brute-force maximal cliques is for tiny graphs only"
    );
    let mut cliques: Vec<Vec<Vertex>> = Vec::new();
    for mask in 1u32..(1u32 << n) {
        let members: Vec<Vertex> = (0..n as Vertex).filter(|&v| mask >> v & 1 == 1).collect();
        if is_maximal_clique(g, &members) {
            cliques.push(members);
        }
    }
    cliques.sort();
    cliques
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn triangles_of_complete_graph() {
        let g = generators::complete(6);
        // C(6,3) = 20 triangles.
        assert_eq!(triangle_count(&g), 20);
        assert!((global_clustering_coefficient(&g) - 1.0).abs() < 1e-9);
        assert_eq!(brute_force_k_clique_count(&g, 3), 20);
        assert_eq!(brute_force_k_clique_count(&g, 4), 15);
        assert_eq!(brute_force_k_clique_count(&g, 6), 1);
    }

    #[test]
    fn triangles_of_triangle_free_graph() {
        let g = generators::cycle(10);
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(global_clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn components_of_disjoint_pieces() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let comp = connected_components(&g);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[5], comp[0]);
        assert_eq!(num_connected_components(&g), 3);
    }

    #[test]
    fn clique_predicates() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]);
        assert!(is_clique(&g, &[0, 1, 2]));
        assert!(!is_clique(&g, &[0, 1, 3]));
        assert!(is_maximal_clique(&g, &[0, 1, 2]));
        assert!(!is_maximal_clique(&g, &[0, 1])); // extendable by 2
        assert!(is_maximal_clique(&g, &[3, 4]));
        assert!(!is_maximal_clique(&g, &[]));
    }

    #[test]
    fn brute_force_maximal_cliques_on_small_graph() {
        // Two triangles sharing vertex 2, plus an isolated edge.
        let g = CsrGraph::from_edges(7, &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4), (5, 6)]);
        let cliques = brute_force_maximal_cliques(&g);
        assert_eq!(cliques, vec![vec![0, 1, 2], vec![2, 3, 4], vec![5, 6]]);
    }
}
