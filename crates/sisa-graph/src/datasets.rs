//! Synthetic stand-ins for the paper's input datasets (Table 7).
//!
//! The paper evaluates on Network Repository graphs [Rossi & Ahmed 2016] from
//! eight domains. Those datasets cannot be downloaded in this environment, so
//! every entry here is a *stand-in*: a deterministic synthetic graph whose
//! vertex count, edge count and structural character (degree-tail heaviness,
//! presence of dense clusters) approximate the original. The registry records
//! the original sizes so the benchmark harness can report how faithful each
//! stand-in is, and the large graphs are scaled down (with the scale factor
//! recorded) to keep cycle-model simulations tractable — the paper itself
//! resorts to pattern-count cutoffs for the same reason (§9.1, "Tackling Long
//! Simulation Runtimes").
//!
//! Users with access to the original `.edges` files can bypass the stand-ins
//! entirely via [`crate::io::read_edge_list`].

use crate::generators::{self, PlantedCliqueConfig, RmatConfig};
use crate::CsrGraph;

/// The domain a dataset belongs to (the prefix used in the paper's plots).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphClass {
    /// Gene functional association / regulatory networks (`bio-`).
    Biological,
    /// Brain connectomes (`bn-`).
    Brain,
    /// Animal / human interaction networks (`int-`, `intD-`).
    Interaction,
    /// Economic input–output networks (`econ-`).
    Economic,
    /// Social networks (`soc-`).
    Social,
    /// Scientific-computing meshes (`sc-`).
    SciComp,
    /// DIMACS clique-benchmark graphs (`dimacs-`).
    DiscreteMath,
    /// Wiktionary edit networks (`edit-`).
    Wiki,
}

impl GraphClass {
    /// The prefix the paper uses for this class.
    #[must_use]
    pub fn prefix(self) -> &'static str {
        match self {
            Self::Biological => "bio",
            Self::Brain => "bn",
            Self::Interaction => "int",
            Self::Economic => "econ",
            Self::Social => "soc",
            Self::SciComp => "sc",
            Self::DiscreteMath => "dimacs",
            Self::Wiki => "edit",
        }
    }
}

/// How a stand-in is synthesised.
#[derive(Clone, Debug, PartialEq)]
enum Recipe {
    /// Overlapping planted cliques over a sparse background: heavy tails and
    /// dense clusters (bio / brain / econ character).
    Community(PlantedCliqueConfig),
    /// Near-complete dense graph (small animal-interaction and DIMACS graphs).
    NearComplete { n: usize, density: f64 },
    /// R-MAT / Kronecker (social and web-like graphs).
    Rmat(RmatConfig),
    /// Barabási–Albert preferential attachment (moderately skewed networks).
    BarabasiAlbert { n: usize, m_attach: usize },
    /// Fixed-edge-count Erdős–Rényi (very sparse contact networks).
    SparseRandom { n: usize, m: usize },
    /// Watts–Strogatz lattice (scientific-computing meshes: light tails).
    SmallWorld { n: usize, k: usize, beta: f64 },
}

/// A named dataset stand-in.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetSpec {
    /// The dataset name as it appears in the paper's figures.
    pub name: &'static str,
    /// The dataset's domain.
    pub class: GraphClass,
    /// Vertex count of the original dataset (from Table 7).
    pub paper_vertices: usize,
    /// Edge count of the original dataset (from Table 7).
    pub paper_edges: usize,
    /// Linear scale factor applied to the stand-in (1.0 = same order of size
    /// as the original; < 1.0 for the large graphs of Figure 8).
    pub scale: f64,
    recipe: Recipe,
}

impl DatasetSpec {
    /// Generates the stand-in graph deterministically from `seed`.
    #[must_use]
    pub fn generate(&self, seed: u64) -> CsrGraph {
        match &self.recipe {
            Recipe::Community(cfg) => generators::planted_cliques(cfg, seed).0,
            Recipe::NearComplete { n, density } => generators::near_complete(*n, *density, seed),
            Recipe::Rmat(cfg) => generators::kronecker(cfg, seed),
            Recipe::BarabasiAlbert { n, m_attach } => {
                generators::barabasi_albert(*n, *m_attach, seed)
            }
            Recipe::SparseRandom { n, m } => generators::erdos_renyi_with_edges(*n, *m, seed),
            Recipe::SmallWorld { n, k, beta } => generators::watts_strogatz(*n, *k, *beta, seed),
        }
    }

    /// Whether this entry belongs to the scaled-down "large graph" suite
    /// (Figure 8) rather than the small suite (Figure 6).
    #[must_use]
    pub fn is_large(&self) -> bool {
        self.scale < 1.0
    }
}

/// Builds a community recipe that approximately matches `n` vertices and `m`
/// edges with dense clusters whose size reaches `max_clique_frac * n`.
fn community(n: usize, m: usize, max_clique_frac: f64, overlap: f64) -> Recipe {
    let max_clique = ((n as f64 * max_clique_frac) as usize).clamp(6, n);
    let min_clique = (max_clique / 4).clamp(4, max_clique);
    let avg = (min_clique + max_clique) as f64 / 2.0;
    let edges_per_clique = avg * (avg - 1.0) / 2.0;
    // Aim for roughly 70% of the edges to come from planted cliques.
    let num_cliques = ((0.7 * m as f64) / edges_per_clique).ceil().max(3.0) as usize;
    let background = (m as f64 * 0.3) as usize;
    Recipe::Community(PlantedCliqueConfig {
        num_vertices: n,
        num_cliques,
        min_clique_size: min_clique,
        max_clique_size: max_clique,
        background_edges: background,
        overlap,
    })
}

/// The 20 small graphs of Figure 6, in the order the paper plots them.
#[must_use]
pub fn small_suite() -> Vec<DatasetSpec> {
    use GraphClass::*;
    vec![
        DatasetSpec {
            name: "bio-SC-GT",
            class: Biological,
            paper_vertices: 1700,
            paper_edges: 34_000,
            scale: 1.0,
            recipe: community(1700, 34_000, 0.05, 0.3),
        },
        DatasetSpec {
            name: "bn-flyMedulla",
            class: Brain,
            paper_vertices: 1800,
            paper_edges: 8_900,
            scale: 1.0,
            recipe: Recipe::BarabasiAlbert {
                n: 1800,
                m_attach: 5,
            },
        },
        DatasetSpec {
            name: "bn-mouse",
            class: Brain,
            paper_vertices: 1100,
            paper_edges: 90_800,
            scale: 1.0,
            recipe: community(1100, 90_800, 0.20, 0.4),
        },
        DatasetSpec {
            name: "int-antCol3-d1",
            class: Interaction,
            paper_vertices: 161,
            paper_edges: 11_100,
            scale: 1.0,
            recipe: Recipe::NearComplete {
                n: 161,
                density: 0.86,
            },
        },
        DatasetSpec {
            name: "int-antCol5-d1",
            class: Interaction,
            paper_vertices: 153,
            paper_edges: 9_000,
            scale: 1.0,
            recipe: Recipe::NearComplete {
                n: 153,
                density: 0.77,
            },
        },
        DatasetSpec {
            name: "int-antCol6-d2",
            class: Interaction,
            paper_vertices: 165,
            paper_edges: 10_200,
            scale: 1.0,
            recipe: Recipe::NearComplete {
                n: 165,
                density: 0.75,
            },
        },
        DatasetSpec {
            name: "bio-CE-PG",
            class: Biological,
            paper_vertices: 1800,
            paper_edges: 48_000,
            scale: 1.0,
            recipe: community(1800, 48_000, 0.06, 0.3),
        },
        DatasetSpec {
            name: "bio-DM-CX",
            class: Biological,
            paper_vertices: 4000,
            paper_edges: 77_000,
            scale: 1.0,
            recipe: community(4000, 77_000, 0.04, 0.3),
        },
        DatasetSpec {
            name: "bio-DR-CX",
            class: Biological,
            paper_vertices: 3200,
            paper_edges: 85_000,
            scale: 1.0,
            recipe: community(3200, 85_000, 0.04, 0.3),
        },
        DatasetSpec {
            name: "bio-HS-LC",
            class: Biological,
            paper_vertices: 4200,
            paper_edges: 39_000,
            scale: 1.0,
            recipe: community(4200, 39_000, 0.06, 0.35),
        },
        DatasetSpec {
            name: "bio-SC-HT",
            class: Biological,
            paper_vertices: 2000,
            paper_edges: 63_000,
            scale: 1.0,
            recipe: community(2000, 63_000, 0.05, 0.3),
        },
        DatasetSpec {
            name: "bio-WormNetB3",
            class: Biological,
            paper_vertices: 2400,
            paper_edges: 79_000,
            scale: 1.0,
            recipe: community(2400, 79_000, 0.05, 0.3),
        },
        DatasetSpec {
            name: "dimacs-c500-9",
            class: DiscreteMath,
            paper_vertices: 501,
            paper_edges: 112_000,
            scale: 1.0,
            recipe: Recipe::NearComplete {
                n: 501,
                density: 0.9,
            },
        },
        DatasetSpec {
            name: "econ-beacxc",
            class: Economic,
            paper_vertices: 498,
            paper_edges: 42_000,
            scale: 1.0,
            recipe: community(498, 42_000, 0.15, 0.35),
        },
        DatasetSpec {
            name: "econ-beaflw",
            class: Economic,
            paper_vertices: 508,
            paper_edges: 44_900,
            scale: 1.0,
            recipe: community(508, 44_900, 0.15, 0.35),
        },
        DatasetSpec {
            name: "econ-mbeacxc",
            class: Economic,
            paper_vertices: 493,
            paper_edges: 41_600,
            scale: 1.0,
            recipe: community(493, 41_600, 0.15, 0.35),
        },
        DatasetSpec {
            name: "econ-orani678",
            class: Economic,
            paper_vertices: 2500,
            paper_edges: 86_800,
            scale: 1.0,
            recipe: community(2500, 86_800, 0.08, 0.3),
        },
        DatasetSpec {
            name: "int-HosWardProx",
            class: Interaction,
            paper_vertices: 1800,
            paper_edges: 1400,
            scale: 1.0,
            recipe: Recipe::SparseRandom { n: 1800, m: 1400 },
        },
        DatasetSpec {
            name: "intD-antCol4",
            class: Interaction,
            paper_vertices: 134,
            paper_edges: 5000,
            scale: 1.0,
            recipe: Recipe::NearComplete {
                n: 134,
                density: 0.56,
            },
        },
        DatasetSpec {
            name: "soc-fbMsg",
            class: Social,
            paper_vertices: 1900,
            paper_edges: 13_800,
            scale: 1.0,
            recipe: Recipe::Rmat(RmatConfig {
                scale: 11,
                edge_factor: 7,
                a: 0.57,
                b: 0.19,
                c: 0.19,
            }),
        },
    ]
}

/// The six large graphs of Figure 8, scaled down to keep the cycle-model
/// simulation tractable. `scale` records the linear reduction in vertex count.
#[must_use]
pub fn large_suite() -> Vec<DatasetSpec> {
    use GraphClass::*;
    vec![
        DatasetSpec {
            name: "bio-humanGene",
            class: Biological,
            paper_vertices: 14_000,
            paper_edges: 9_000_000,
            scale: 0.11,
            recipe: community(1500, 110_000, 0.35, 0.5),
        },
        DatasetSpec {
            name: "bio-mouseGene",
            class: Biological,
            paper_vertices: 45_000,
            paper_edges: 14_500_000,
            scale: 0.045,
            recipe: community(2000, 130_000, 0.20, 0.45),
        },
        DatasetSpec {
            name: "edit-enwiktionary",
            class: Wiki,
            paper_vertices: 2_100_000,
            paper_edges: 5_500_000,
            scale: 0.004,
            recipe: Recipe::Rmat(RmatConfig {
                scale: 13,
                edge_factor: 3,
                a: 0.57,
                b: 0.19,
                c: 0.19,
            }),
        },
        DatasetSpec {
            name: "int-dating",
            class: Interaction,
            paper_vertices: 169_000,
            paper_edges: 17_300_000,
            scale: 0.024,
            recipe: Recipe::Rmat(RmatConfig {
                scale: 12,
                edge_factor: 20,
                a: 0.55,
                b: 0.2,
                c: 0.2,
            }),
        },
        DatasetSpec {
            name: "sc-pwtk",
            class: SciComp,
            paper_vertices: 217_900,
            paper_edges: 5_600_000,
            scale: 0.028,
            recipe: Recipe::SmallWorld {
                n: 6000,
                k: 24,
                beta: 0.05,
            },
        },
        DatasetSpec {
            name: "soc-orkut",
            class: Social,
            paper_vertices: 3_100_000,
            paper_edges: 117_000_000,
            scale: 0.0026,
            recipe: Recipe::Rmat(RmatConfig {
                scale: 13,
                edge_factor: 15,
                a: 0.40,
                b: 0.25,
                c: 0.25,
            }),
        },
    ]
}

/// Every registered stand-in (small suite followed by large suite).
#[must_use]
pub fn all() -> Vec<DatasetSpec> {
    let mut v = small_suite();
    v.extend(large_suite());
    v
}

/// Looks a stand-in up by its paper name.
#[must_use]
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    all().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn suites_have_the_papers_datasets() {
        assert_eq!(small_suite().len(), 20);
        assert_eq!(large_suite().len(), 6);
        assert_eq!(all().len(), 26);
        assert!(by_name("bio-humanGene").is_some());
        assert!(by_name("dimacs-c500-9").is_some());
        assert!(by_name("no-such-graph").is_none());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn small_standins_match_paper_sizes_in_order_of_magnitude() {
        for spec in small_suite() {
            let g = spec.generate(1);
            let n_ratio = g.num_vertices() as f64 / spec.paper_vertices as f64;
            assert!(
                (0.4..=2.5).contains(&n_ratio),
                "{}: vertex count off ({} vs {})",
                spec.name,
                g.num_vertices(),
                spec.paper_vertices
            );
            let m_ratio = g.num_edges() as f64 / spec.paper_edges as f64;
            assert!(
                (0.25..=4.0).contains(&m_ratio),
                "{}: edge count off ({} vs {})",
                spec.name,
                g.num_edges(),
                spec.paper_edges
            );
            assert!(!spec.is_large());
        }
    }

    #[test]
    fn human_gene_standin_is_much_heavier_tailed_than_orkut_standin() {
        // The contrast Figure 7a illustrates.
        let gene = by_name("bio-humanGene").unwrap().generate(2);
        let orkut = by_name("soc-orkut").unwrap().generate(2);
        let gene_stats = DegreeStats::compute(&gene);
        let orkut_stats = DegreeStats::compute(&orkut);
        assert!(
            gene_stats.max_degree_fraction > 0.25,
            "{}",
            gene_stats.max_degree_fraction
        );
        assert!(
            orkut_stats.max_degree_fraction < 0.12,
            "{}",
            orkut_stats.max_degree_fraction
        );
        assert!(by_name("bio-humanGene").unwrap().is_large());
    }

    #[test]
    fn class_prefixes() {
        assert_eq!(GraphClass::Biological.prefix(), "bio");
        assert_eq!(GraphClass::DiscreteMath.prefix(), "dimacs");
        for spec in small_suite() {
            assert!(spec.name.starts_with(spec.class.prefix()) || spec.name.starts_with("intD"));
        }
    }
}
