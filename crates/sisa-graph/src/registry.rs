//! A thread-safe registry of **named** graphs with load-once/share-many
//! semantics, per-name **generation counters** and an optional residency
//! capacity with LRU eviction.
//!
//! A long-lived process (e.g. the `sisa-service` query front-end) refers to
//! graphs by name. Materialising a stand-in from [`crate::datasets`] — or
//! re-reading one from disk — is expensive, so the registry guarantees that
//! each name is materialised **once**: the first [`GraphRegistry::acquire`]
//! generates (or finds a registered) graph and every later acquire of the
//! same name returns the *same* shared [`Arc`] handle at zero additional
//! cost. [`GraphRegistry::generations`] counts actual materialisations, so
//! callers can regression-test the dedup guarantee.
//!
//! ## Generations
//!
//! Every name additionally carries a monotone **per-name generation**
//! ([`GraphRegistry::generation_of`], also exposed on
//! [`GraphLease::generation`]). It ticks on every event that changes what
//! the name maps to — materialisation, re-registration, and eviction
//! (explicit or capacity-driven) — and *never* on a dedup acquire. Anything
//! keyed by `(name, generation)` (e.g. a query-result cache) is therefore
//! automatically invalidated when the graph behind the name changes: the old
//! generation can never be observed again. Because evictions tick the
//! counter too, a generation sampled while a name is *not* resident is never
//! a valid lease generation, so lookups between an evict and the reload
//! cannot alias either side.
//!
//! ## Capacity
//!
//! [`RegistryConfig::max_resident`] bounds how many graphs stay resident at
//! once; inserting beyond the bound evicts the least-recently-acquired
//! name (ticking its generation). Outstanding [`Arc`] leases stay valid —
//! eviction only drops the registry's own handle.

use crate::datasets;
use crate::delta::GraphDelta;
use crate::CsrGraph;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Limits and policies of a [`GraphRegistry`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegistryConfig {
    /// Maximum graphs resident at once; `0` (the default) means unbounded.
    /// When an insert (acquire-miss or register) exceeds the bound, the
    /// least-recently-used resident name is evicted and its generation
    /// ticks.
    pub max_resident: usize,
}

/// One acquisition of a named graph: the shared handle plus the per-name
/// generation it belongs to. Two leases of the same name compare equal on
/// `generation` iff nothing evicted or replaced the graph in between.
#[derive(Clone, Debug)]
pub struct GraphLease {
    /// The shared, immutable graph (an [`Arc`] ref-count keeps it alive).
    pub graph: Arc<CsrGraph>,
    /// The per-name generation this lease was cut from (see
    /// [`GraphRegistry::generation_of`]).
    pub generation: u64,
}

/// A named-graph cache shared by every worker of a process.
///
/// ```
/// use sisa_graph::registry::GraphRegistry;
///
/// let reg = GraphRegistry::new(42);
/// let first = reg.acquire("bn-mouse").expect("known dataset");
/// let second = reg.acquire("bn-mouse").expect("known dataset");
/// assert!(std::sync::Arc::ptr_eq(&first, &second), "shared handle");
/// assert_eq!(reg.generations(), 1, "materialised exactly once");
/// ```
#[derive(Debug)]
pub struct GraphRegistry {
    seed: u64,
    cfg: RegistryConfig,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Entry {
    graph: Arc<CsrGraph>,
    generation: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    graphs: BTreeMap<String, Entry>,
    /// Monotone per-name counters; entries persist across evictions so a
    /// name's generation never repeats.
    name_generations: BTreeMap<String, u64>,
    generations: u64,
    evictions: u64,
    mutations: u64,
    touch: u64,
}

impl Inner {
    fn tick(&mut self, name: &str) -> u64 {
        let counter = self.name_generations.entry(name.to_string()).or_insert(0);
        *counter += 1;
        *counter
    }

    fn touch(&mut self) -> u64 {
        self.touch += 1;
        self.touch
    }

    /// Evicts least-recently-used residents until the capacity bound holds.
    fn enforce_capacity(&mut self, max_resident: usize) {
        if max_resident == 0 {
            return;
        }
        while self.graphs.len() > max_resident {
            let victim = self
                .graphs
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(name, _)| name.clone())
                .expect("non-empty over-capacity registry");
            self.graphs.remove(&victim);
            self.tick(&victim);
            self.evictions += 1;
        }
    }
}

impl GraphRegistry {
    /// Creates an empty, unbounded registry. `seed` drives every dataset
    /// stand-in this registry materialises, so two registries with the same
    /// seed serve identical graphs.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        GraphRegistry::with_config(seed, RegistryConfig::default())
    }

    /// Creates an empty registry with explicit limits.
    #[must_use]
    pub fn with_config(seed: u64, cfg: RegistryConfig) -> Self {
        GraphRegistry {
            seed,
            cfg,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The seed dataset stand-ins are generated from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured limits.
    #[must_use]
    pub fn config(&self) -> &RegistryConfig {
        &self.cfg
    }

    /// Returns the shared handle for `name`, materialising it on first use.
    ///
    /// Resolution order: a graph previously [`GraphRegistry::register`]ed
    /// under `name`, else the dataset stand-in of that name
    /// ([`datasets::by_name`]). Returns `None` for unknown names.
    pub fn acquire(&self, name: &str) -> Option<Arc<CsrGraph>> {
        self.acquire_lease(name).map(|lease| lease.graph)
    }

    /// Like [`GraphRegistry::acquire`], but the lease also carries the
    /// per-name generation the handle was cut from — the key a
    /// generation-keyed cache must use for anything derived from the graph.
    pub fn acquire_lease(&self, name: &str) -> Option<GraphLease> {
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(entry) = inner.graphs.get(name) {
            let lease = GraphLease {
                graph: Arc::clone(&entry.graph),
                generation: entry.generation,
            };
            let stamp = inner.touch();
            inner
                .graphs
                .get_mut(name)
                .expect("entry still present")
                .last_used = stamp;
            return Some(lease);
        }
        let spec = datasets::by_name(name)?;
        let graph = Arc::new(spec.generate(self.seed));
        inner.generations += 1;
        let generation = inner.tick(name);
        let last_used = inner.touch();
        inner.graphs.insert(
            name.to_string(),
            Entry {
                graph: Arc::clone(&graph),
                generation,
                last_used,
            },
        );
        inner.enforce_capacity(self.cfg.max_resident);
        Some(GraphLease { graph, generation })
    }

    /// Registers a caller-supplied graph under `name`, replacing any previous
    /// entry (and ticking the name's generation), and returns its shared
    /// handle. Counts as one materialisation.
    pub fn register(&self, name: &str, graph: CsrGraph) -> Arc<CsrGraph> {
        let mut inner = self.inner.lock().expect("registry lock");
        let graph = Arc::new(graph);
        inner.generations += 1;
        let generation = inner.tick(name);
        let last_used = inner.touch();
        inner.graphs.insert(
            name.to_string(),
            Entry {
                graph: Arc::clone(&graph),
                generation,
                last_used,
            },
        );
        inner.enforce_capacity(self.cfg.max_resident);
        graph
    }

    /// Applies an edge-stream [`GraphDelta`] to `name` through the replace
    /// path: the current graph (resident, or materialised afresh from the
    /// dataset stand-in) is succeeded by `delta.apply_to(current)` under a
    /// **ticked** per-name generation, and the new lease is returned.
    ///
    /// Because mutation goes through the same generation discipline as
    /// register/evict, every consumer keyed by `(name, generation)` — the
    /// service's result cache, each worker's shard-resident load — is
    /// invalidated *structurally*: a pre-mutation key can never match a
    /// post-mutation lookup. Returns `None` (without ticking anything) when
    /// `name` is neither registered nor a known dataset.
    pub fn mutate(&self, name: &str, delta: &GraphDelta) -> Option<GraphLease> {
        let mut inner = self.inner.lock().expect("registry lock");
        let current: Arc<CsrGraph> = match inner.graphs.get(name) {
            Some(entry) => Arc::clone(&entry.graph),
            None => Arc::new(datasets::by_name(name)?.generate(self.seed)),
        };
        let next = Arc::new(delta.apply_to(&current));
        inner.generations += 1;
        inner.mutations += 1;
        let generation = inner.tick(name);
        let last_used = inner.touch();
        inner.graphs.insert(
            name.to_string(),
            Entry {
                graph: Arc::clone(&next),
                generation,
                last_used,
            },
        );
        inner.enforce_capacity(self.cfg.max_resident);
        Some(GraphLease {
            graph: next,
            generation,
        })
    }

    /// How many deltas were applied through [`GraphRegistry::mutate`] over
    /// the registry's lifetime.
    #[must_use]
    pub fn mutations(&self) -> u64 {
        self.inner.lock().expect("registry lock").mutations
    }

    /// Drops the registry's handle for `name`, ticking the name's
    /// generation. Outstanding [`Arc`] clones stay valid (the graph is freed
    /// when the last lease drops); a later [`GraphRegistry::acquire`]
    /// materialises the name afresh under a newer generation. Returns
    /// whether an entry existed.
    pub fn evict(&self, name: &str) -> bool {
        let mut inner = self.inner.lock().expect("registry lock");
        let existed = inner.graphs.remove(name).is_some();
        if existed {
            inner.tick(name);
            inner.evictions += 1;
        }
        existed
    }

    /// The current per-name generation of `name` (`0` if the registry has
    /// never materialised or evicted it). Monotone: every materialisation,
    /// re-registration and eviction of the name ticks it, and a dedup
    /// acquire never does. While `name` is *not* resident the counter sits
    /// on a value no lease was ever cut from, so `(name, generation)` keys
    /// sampled then can never collide with cached state from either side of
    /// the gap.
    #[must_use]
    pub fn generation_of(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("registry lock")
            .name_generations
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// How many graphs were actually materialised (generated or registered)
    /// over the registry's lifetime — the dedup regression counter.
    #[must_use]
    pub fn generations(&self) -> u64 {
        self.inner.lock().expect("registry lock").generations
    }

    /// How many residents were evicted (explicitly or by the capacity
    /// bound) over the registry's lifetime.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.inner.lock().expect("registry lock").evictions
    }

    /// Whether `name` is currently resident.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.inner
            .lock()
            .expect("registry lock")
            .graphs
            .contains_key(name)
    }

    /// The currently resident names, sorted.
    #[must_use]
    pub fn resident(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("registry lock")
            .graphs
            .keys()
            .cloned()
            .collect()
    }

    /// Number of resident graphs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry lock").graphs.len()
    }

    /// Whether the registry holds no graphs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn acquiring_the_same_name_twice_returns_the_shared_handle() {
        let reg = GraphRegistry::new(7);
        let a = reg.acquire("bn-mouse").expect("known dataset");
        let b = reg.acquire("bn-mouse").expect("known dataset");
        assert!(
            Arc::ptr_eq(&a, &b),
            "second acquire must share, not rebuild"
        );
        assert_eq!(reg.generations(), 1, "one materialisation, not two");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn distinct_names_materialise_independently() {
        let reg = GraphRegistry::new(7);
        let a = reg.acquire("bn-mouse").expect("known dataset");
        let b = reg.acquire("bio-SC-GT").expect("known dataset");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(reg.generations(), 2);
        assert_eq!(reg.resident(), vec!["bio-SC-GT", "bn-mouse"]);
    }

    #[test]
    fn unknown_names_are_rejected_without_a_generation() {
        let reg = GraphRegistry::new(7);
        assert!(reg.acquire("no-such-graph").is_none());
        assert_eq!(reg.generations(), 0);
        assert_eq!(reg.generation_of("no-such-graph"), 0);
        assert!(reg.is_empty());
    }

    #[test]
    fn registered_graphs_shadow_datasets_and_share() {
        let reg = GraphRegistry::new(7);
        let custom = generators::erdos_renyi(40, 0.2, 3);
        let a = reg.register("bn-mouse", custom);
        let b = reg.acquire("bn-mouse").expect("registered");
        assert!(
            Arc::ptr_eq(&a, &b),
            "acquire must return the registered graph"
        );
        assert_eq!(a.num_vertices(), 40, "not the dataset stand-in");
        assert_eq!(reg.generations(), 1);
    }

    #[test]
    fn eviction_releases_the_name_and_a_reacquire_regenerates() {
        let reg = GraphRegistry::new(7);
        let a = reg.acquire("bn-mouse").expect("known dataset");
        assert!(reg.evict("bn-mouse"));
        assert!(!reg.evict("bn-mouse"), "already evicted");
        assert!(!reg.contains("bn-mouse"));
        let b = reg.acquire("bn-mouse").expect("known dataset");
        assert!(!Arc::ptr_eq(&a, &b), "fresh materialisation after eviction");
        assert_eq!(reg.generations(), 2);
        // Determinism: the regenerated graph is identical content-wise.
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn same_seed_registries_serve_identical_graphs() {
        let a = GraphRegistry::new(11).acquire("bn-flyMedulla").unwrap();
        let b = GraphRegistry::new(11).acquire("bn-flyMedulla").unwrap();
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn dedup_acquires_share_one_generation_and_never_tick_it() {
        let reg = GraphRegistry::new(7);
        let first = reg.acquire_lease("bn-mouse").expect("known dataset");
        assert_eq!(first.generation, 1, "first materialisation is gen 1");
        let second = reg.acquire_lease("bn-mouse").expect("known dataset");
        assert_eq!(second.generation, first.generation, "dedup: same gen");
        assert!(Arc::ptr_eq(&first.graph, &second.graph));
        assert_eq!(reg.generation_of("bn-mouse"), first.generation);
        assert_eq!(reg.generations(), 1);
    }

    #[test]
    fn evict_and_reload_tick_the_per_name_generation() {
        let reg = GraphRegistry::new(7);
        let before = reg.acquire_lease("bn-mouse").expect("known dataset");
        assert!(reg.evict("bn-mouse"));
        // Between eviction and reload the counter sits on a value no lease
        // was cut from: lookups in the gap can never alias either side.
        let gap = reg.generation_of("bn-mouse");
        assert!(gap > before.generation, "eviction ticks the generation");
        let after = reg.acquire_lease("bn-mouse").expect("known dataset");
        assert!(after.generation > gap, "reload ticks it again");
        assert_ne!(after.generation, before.generation);
    }

    #[test]
    fn re_registration_ticks_the_generation() {
        let reg = GraphRegistry::new(7);
        let first = reg.acquire_lease("bn-mouse").expect("known dataset");
        reg.register("bn-mouse", generators::erdos_renyi(12, 0.5, 1));
        let second = reg.acquire_lease("bn-mouse").expect("registered");
        assert!(second.generation > first.generation);
        assert_eq!(second.graph.num_vertices(), 12);
    }

    #[test]
    fn capacity_evicts_the_least_recently_used_and_ticks_its_generation() {
        let reg = GraphRegistry::with_config(7, RegistryConfig { max_resident: 2 });
        reg.register("a", generators::erdos_renyi(8, 0.5, 1));
        reg.register("b", generators::erdos_renyi(9, 0.5, 2));
        let gen_a = reg.generation_of("a");
        // Touch `a` so `b` becomes the least recently used.
        reg.acquire("a").expect("resident");
        reg.register("c", generators::erdos_renyi(10, 0.5, 3));
        assert_eq!(reg.len(), 2, "capacity bound holds");
        assert!(reg.contains("a") && reg.contains("c"));
        assert!(!reg.contains("b"), "LRU victim was b");
        assert!(reg.generation_of("b") > 1, "capacity eviction ticks gen");
        assert_eq!(reg.generation_of("a"), gen_a, "survivors keep their gen");
        assert_eq!(reg.evictions(), 1);
    }

    #[test]
    fn capacity_eviction_leaves_outstanding_leases_valid() {
        let reg = GraphRegistry::with_config(7, RegistryConfig { max_resident: 1 });
        let lease = reg
            .register("keep", generators::erdos_renyi(16, 0.4, 5))
            .clone();
        reg.register("next", generators::erdos_renyi(8, 0.4, 6));
        assert!(!reg.contains("keep"), "evicted by capacity");
        assert_eq!(lease.num_vertices(), 16, "the lease still works");
    }

    #[test]
    fn mutation_replaces_the_graph_and_ticks_the_generation() {
        let reg = GraphRegistry::new(7);
        reg.register("g", CsrGraph::from_edges(4, &[(0, 1), (1, 2)]));
        let before = reg.acquire_lease("g").expect("registered");
        let delta = GraphDelta::new().insert(2, 3).delete(0, 1);
        let after = reg.mutate("g", &delta).expect("mutable");
        assert!(
            after.generation > before.generation,
            "mutation ticks the per-name generation"
        );
        assert!(after.graph.has_edge(2, 3));
        assert!(!after.graph.has_edge(0, 1));
        assert!(before.graph.has_edge(0, 1), "old leases stay immutable");
        assert_eq!(reg.mutations(), 1);
        // The resident entry now serves the mutated graph.
        let lease = reg.acquire_lease("g").expect("resident");
        assert!(Arc::ptr_eq(&lease.graph, &after.graph));
        assert_eq!(lease.generation, after.generation);
    }

    #[test]
    fn mutating_a_non_resident_dataset_materialises_it_first() {
        let reg = GraphRegistry::new(7);
        let baseline = GraphRegistry::new(7).acquire("bn-mouse").unwrap();
        let delta = GraphDelta::new().insert(0, 1).insert(0, 2);
        let lease = reg.mutate("bn-mouse", &delta).expect("known dataset");
        assert!(lease.graph.has_edge(0, 1));
        assert!(lease.graph.has_edge(0, 2));
        let added = [!baseline.has_edge(0, 1), !baseline.has_edge(0, 2)]
            .iter()
            .filter(|&&b| b)
            .count();
        assert_eq!(lease.graph.num_edges(), baseline.num_edges() + added);
        assert!(reg.mutate("no-such-graph", &delta).is_none());
        assert_eq!(
            reg.generation_of("no-such-graph"),
            0,
            "failed mutate is free"
        );
    }

    #[test]
    fn unbounded_registries_never_capacity_evict() {
        let reg = GraphRegistry::new(7);
        for i in 0..6 {
            reg.register(&format!("g{i}"), generators::erdos_renyi(6, 0.5, i));
        }
        assert_eq!(reg.len(), 6);
        assert_eq!(reg.evictions(), 0);
    }
}
