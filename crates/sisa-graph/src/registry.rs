//! A thread-safe registry of **named** graphs with load-once/share-many
//! semantics.
//!
//! A long-lived process (e.g. the `sisa-service` query front-end) refers to
//! graphs by name. Materialising a stand-in from [`crate::datasets`] — or
//! re-reading one from disk — is expensive, so the registry guarantees that
//! each name is materialised **once**: the first [`GraphRegistry::acquire`]
//! generates (or finds a registered) graph and every later acquire of the
//! same name returns the *same* shared [`Arc`] handle at zero additional
//! cost. [`GraphRegistry::generations`] counts actual materialisations, so
//! callers can regression-test the dedup guarantee.

use crate::datasets;
use crate::CsrGraph;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A named-graph cache shared by every worker of a process.
///
/// ```
/// use sisa_graph::registry::GraphRegistry;
///
/// let reg = GraphRegistry::new(42);
/// let first = reg.acquire("bn-mouse").expect("known dataset");
/// let second = reg.acquire("bn-mouse").expect("known dataset");
/// assert!(std::sync::Arc::ptr_eq(&first, &second), "shared handle");
/// assert_eq!(reg.generations(), 1, "materialised exactly once");
/// ```
#[derive(Debug)]
pub struct GraphRegistry {
    seed: u64,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    graphs: BTreeMap<String, Arc<CsrGraph>>,
    generations: u64,
}

impl GraphRegistry {
    /// Creates an empty registry. `seed` drives every dataset stand-in this
    /// registry materialises, so two registries with the same seed serve
    /// identical graphs.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        GraphRegistry {
            seed,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The seed dataset stand-ins are generated from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns the shared handle for `name`, materialising it on first use.
    ///
    /// Resolution order: a graph previously [`GraphRegistry::register`]ed
    /// under `name`, else the dataset stand-in of that name
    /// ([`datasets::by_name`]). Returns `None` for unknown names.
    pub fn acquire(&self, name: &str) -> Option<Arc<CsrGraph>> {
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(existing) = inner.graphs.get(name) {
            return Some(Arc::clone(existing));
        }
        let spec = datasets::by_name(name)?;
        let graph = Arc::new(spec.generate(self.seed));
        inner.generations += 1;
        inner.graphs.insert(name.to_string(), Arc::clone(&graph));
        Some(graph)
    }

    /// Registers a caller-supplied graph under `name`, replacing any previous
    /// entry, and returns its shared handle. Counts as one materialisation.
    pub fn register(&self, name: &str, graph: CsrGraph) -> Arc<CsrGraph> {
        let mut inner = self.inner.lock().expect("registry lock");
        let graph = Arc::new(graph);
        inner.generations += 1;
        inner.graphs.insert(name.to_string(), Arc::clone(&graph));
        graph
    }

    /// Drops the registry's handle for `name`. Outstanding [`Arc`] clones
    /// stay valid (the graph is freed when the last lease drops); a later
    /// [`GraphRegistry::acquire`] materialises the name afresh. Returns
    /// whether an entry existed.
    pub fn evict(&self, name: &str) -> bool {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.graphs.remove(name).is_some()
    }

    /// How many graphs were actually materialised (generated or registered)
    /// over the registry's lifetime — the dedup regression counter.
    #[must_use]
    pub fn generations(&self) -> u64 {
        self.inner.lock().expect("registry lock").generations
    }

    /// Whether `name` is currently resident.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.inner
            .lock()
            .expect("registry lock")
            .graphs
            .contains_key(name)
    }

    /// The currently resident names, sorted.
    #[must_use]
    pub fn resident(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("registry lock")
            .graphs
            .keys()
            .cloned()
            .collect()
    }

    /// Number of resident graphs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry lock").graphs.len()
    }

    /// Whether the registry holds no graphs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn acquiring_the_same_name_twice_returns_the_shared_handle() {
        let reg = GraphRegistry::new(7);
        let a = reg.acquire("bn-mouse").expect("known dataset");
        let b = reg.acquire("bn-mouse").expect("known dataset");
        assert!(
            Arc::ptr_eq(&a, &b),
            "second acquire must share, not rebuild"
        );
        assert_eq!(reg.generations(), 1, "one materialisation, not two");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn distinct_names_materialise_independently() {
        let reg = GraphRegistry::new(7);
        let a = reg.acquire("bn-mouse").expect("known dataset");
        let b = reg.acquire("bio-SC-GT").expect("known dataset");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(reg.generations(), 2);
        assert_eq!(reg.resident(), vec!["bio-SC-GT", "bn-mouse"]);
    }

    #[test]
    fn unknown_names_are_rejected_without_a_generation() {
        let reg = GraphRegistry::new(7);
        assert!(reg.acquire("no-such-graph").is_none());
        assert_eq!(reg.generations(), 0);
        assert!(reg.is_empty());
    }

    #[test]
    fn registered_graphs_shadow_datasets_and_share() {
        let reg = GraphRegistry::new(7);
        let custom = generators::erdos_renyi(40, 0.2, 3);
        let a = reg.register("bn-mouse", custom);
        let b = reg.acquire("bn-mouse").expect("registered");
        assert!(
            Arc::ptr_eq(&a, &b),
            "acquire must return the registered graph"
        );
        assert_eq!(a.num_vertices(), 40, "not the dataset stand-in");
        assert_eq!(reg.generations(), 1);
    }

    #[test]
    fn eviction_releases_the_name_and_a_reacquire_regenerates() {
        let reg = GraphRegistry::new(7);
        let a = reg.acquire("bn-mouse").expect("known dataset");
        assert!(reg.evict("bn-mouse"));
        assert!(!reg.evict("bn-mouse"), "already evicted");
        assert!(!reg.contains("bn-mouse"));
        let b = reg.acquire("bn-mouse").expect("known dataset");
        assert!(!Arc::ptr_eq(&a, &b), "fresh materialisation after eviction");
        assert_eq!(reg.generations(), 2);
        // Determinism: the regenerated graph is identical content-wise.
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn same_seed_registries_serve_identical_graphs() {
        let a = GraphRegistry::new(11).acquire("bn-flyMedulla").unwrap();
        let b = GraphRegistry::new(11).acquire("bn-flyMedulla").unwrap();
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
