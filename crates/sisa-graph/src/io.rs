//! Plain-text edge-list input/output.
//!
//! The Network Repository datasets referenced by the paper ship as whitespace
//! separated edge lists (optionally with a header line). This module parses
//! and writes that format so that users with access to the original datasets
//! can run every experiment on the real inputs instead of the synthetic
//! stand-ins.

use crate::{CsrGraph, GraphBuilder, Vertex};
use std::fmt::Write as _;
use std::path::Path;

/// Errors produced while parsing an edge list.
#[derive(Debug)]
pub enum ParseError {
    /// An I/O error while reading the file.
    Io(std::io::Error),
    /// A line that is not a comment and does not contain two integers.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Malformed { line, content } => {
                write!(f, "malformed edge on line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Parses an undirected edge list from a string.
///
/// Lines starting with `#` or `%` are comments. Each remaining line must hold
/// two integers (an edge); extra columns (e.g. weights) are ignored. The
/// number of vertices is one more than the maximum vertex id seen.
pub fn parse_edge_list(text: &str) -> Result<CsrGraph, ParseError> {
    let mut edges: Vec<(Vertex, Vertex)> = Vec::new();
    let mut max_vertex: Vertex = 0;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<Vertex> { tok.and_then(|t| t.parse().ok()) };
        match (parse(parts.next()), parse(parts.next())) {
            (Some(u), Some(v)) => {
                max_vertex = max_vertex.max(u).max(v);
                edges.push((u, v));
            }
            _ => {
                return Err(ParseError::Malformed {
                    line: idx + 1,
                    content: raw.to_string(),
                })
            }
        }
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_vertex as usize + 1
    };
    let mut builder = GraphBuilder::new(n);
    builder.add_edges(edges);
    Ok(builder.build())
}

/// Reads an undirected edge list from a file.
pub fn read_edge_list(path: impl AsRef<Path>) -> Result<CsrGraph, ParseError> {
    let text = std::fs::read_to_string(path)?;
    parse_edge_list(&text)
}

/// Serialises the graph as an edge list (one `u v` line per undirected edge,
/// with a `# n m` comment header).
#[must_use]
pub fn to_edge_list(g: &CsrGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# vertices {} edges {}",
        g.num_vertices(),
        g.num_edges()
    );
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

/// Writes the graph as an edge list to a file.
pub fn write_edge_list(g: &CsrGraph, path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, to_edge_list(g))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_edge_list() {
        let text = "# comment\n% another comment\n0 1\n1 2 7.5\n\n2 0\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn malformed_line_is_reported_with_its_number() {
        let text = "0 1\nnot an edge\n";
        match parse_edge_list(text) {
            Err(ParseError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn round_trip_through_text() {
        let g = crate::generators::erdos_renyi(50, 0.1, 3);
        let text = to_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(back.has_edge(u, v));
        }
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = parse_edge_list("# nothing here\n").unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn file_round_trip() {
        let g = crate::generators::complete(5);
        let dir = std::env::temp_dir().join("sisa_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("k5.edges");
        write_edge_list(&g, &path).unwrap();
        let back = read_edge_list(&path).unwrap();
        assert_eq!(back.num_edges(), 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_formats() {
        let err = ParseError::Malformed {
            line: 3,
            content: "x y".into(),
        };
        assert!(err.to_string().contains("line 3"));
        let io_err = ParseError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io_err.to_string().contains("I/O"));
    }
}
