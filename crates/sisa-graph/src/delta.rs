//! Batched edge-stream mutations of an undirected graph.
//!
//! A [`GraphDelta`] is the unit of change of the streaming/dynamic-graph
//! path: a batch of edge deletions followed by a batch of edge insertions,
//! applied atomically to an immutable [`CsrGraph`] to produce its successor.
//! Deltas are *sets of intents*, not logs: self-loops are dropped, endpoint
//! order is irrelevant (`{u, v}` ≡ `{v, u}`), deleting an absent edge or
//! inserting a present one is a no-op, and within one delta deletes apply
//! **before** inserts — so a delta that deletes and re-inserts the same edge
//! leaves it present.
//!
//! The registry applies deltas through its replace path
//! ([`crate::GraphRegistry::mutate`]), ticking the per-name generation so
//! anything keyed by `(name, generation)` — result caches, shard-resident
//! loads — is invalidated structurally rather than by best-effort signals.

use crate::{CsrGraph, Vertex};

/// A batch of edge deletions and insertions against an undirected graph.
///
/// See the module docs for the exact semantics (deletes before inserts,
/// unordered endpoints, no-op filtering).
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GraphDelta {
    /// Edges to insert (applied after `deletes`).
    pub inserts: Vec<(Vertex, Vertex)>,
    /// Edges to delete (applied first).
    pub deletes: Vec<(Vertex, Vertex)>,
}

impl GraphDelta {
    /// An empty delta.
    #[must_use]
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// Adds an edge insertion (builder form).
    #[must_use]
    pub fn insert(mut self, u: Vertex, v: Vertex) -> Self {
        self.inserts.push((u, v));
        self
    }

    /// Adds an edge deletion (builder form).
    #[must_use]
    pub fn delete(mut self, u: Vertex, v: Vertex) -> Self {
        self.deletes.push((u, v));
        self
    }

    /// Whether the delta carries no intents at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Total intents (inserts + deletes), before no-op filtering.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// The largest vertex id named by any intent, if any.
    #[must_use]
    pub fn max_vertex(&self) -> Option<Vertex> {
        self.deletes
            .iter()
            .chain(self.inserts.iter())
            .map(|&(u, v)| u.max(v))
            .max()
    }

    /// The deletions in application order, as normalised `(min, max)` pairs
    /// with self-loops dropped and duplicates removed.
    #[must_use]
    pub fn normalized_deletes(&self) -> Vec<(Vertex, Vertex)> {
        normalize(&self.deletes)
    }

    /// The insertions in application order, as normalised `(min, max)` pairs
    /// with self-loops dropped and duplicates removed.
    #[must_use]
    pub fn normalized_inserts(&self) -> Vec<(Vertex, Vertex)> {
        normalize(&self.inserts)
    }

    /// Applies the delta to `g`, returning the successor graph: deletes
    /// first, then inserts, each filtered to effective changes. The vertex
    /// set grows to cover any inserted endpoint beyond `g`'s range (isolated
    /// vertices are representable in CSR form).
    #[must_use]
    pub fn apply_to(&self, g: &CsrGraph) -> CsrGraph {
        let n = g
            .num_vertices()
            .max(self.max_vertex().map_or(0, |v| v as usize + 1));
        let mut adj: Vec<Vec<Vertex>> = (0..n)
            .map(|v| {
                if v < g.num_vertices() {
                    g.neighbors(v as Vertex).to_vec()
                } else {
                    Vec::new()
                }
            })
            .collect();
        for (u, v) in self.normalized_deletes() {
            adj[u as usize].retain(|&w| w != v);
            adj[v as usize].retain(|&w| w != u);
        }
        for (u, v) in self.normalized_inserts() {
            if !adj[u as usize].contains(&v) {
                adj[u as usize].push(v);
                adj[v as usize].push(u);
            }
        }
        CsrGraph::from_adjacency(adj, false, None)
    }
}

/// Normalises an intent list: `(min, max)` endpoint order, self-loops
/// dropped, duplicates removed with first-occurrence order preserved.
fn normalize(edges: &[(Vertex, Vertex)]) -> Vec<(Vertex, Vertex)> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::with_capacity(edges.len());
    for &(u, v) in edges {
        if u == v {
            continue;
        }
        let edge = (u.min(v), u.max(v));
        if seen.insert(edge) {
            out.push(edge);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn normalisation_drops_self_loops_and_duplicates() {
        let delta = GraphDelta::new()
            .insert(3, 1)
            .insert(1, 3)
            .insert(2, 2)
            .insert(0, 4);
        assert_eq!(delta.normalized_inserts(), vec![(1, 3), (0, 4)]);
        assert_eq!(delta.len(), 4, "len counts raw intents");
        assert_eq!(delta.max_vertex(), Some(4));
        assert!(GraphDelta::new().is_empty());
    }

    #[test]
    fn apply_inserts_and_deletes_edges() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let next = GraphDelta::new().delete(1, 2).insert(0, 3).apply_to(&g);
        assert_eq!(next.num_edges(), 3);
        assert!(!next.has_edge(1, 2));
        assert!(next.has_edge(0, 3));
        assert!(next.has_edge(0, 1), "untouched edges survive");
    }

    #[test]
    fn deletes_apply_before_inserts_so_reinsertion_wins() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let next = GraphDelta::new().delete(0, 1).insert(0, 1).apply_to(&g);
        assert!(next.has_edge(0, 1), "delete-then-reinsert leaves the edge");
        assert_eq!(next.num_edges(), 1);
    }

    #[test]
    fn no_op_intents_leave_the_graph_unchanged() {
        let g = generators::erdos_renyi(20, 0.2, 7);
        let next = GraphDelta::new()
            .delete(0, 19) // harmless whether or not the edge exists
            .insert(5, 5) // self-loop: dropped
            .apply_to(&g);
        assert_eq!(next.num_vertices(), g.num_vertices());
        let baseline = if g.has_edge(0, 19) {
            g.num_edges() - 1
        } else {
            g.num_edges()
        };
        assert_eq!(next.num_edges(), baseline);
    }

    #[test]
    fn inserting_beyond_the_vertex_range_grows_the_graph() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let next = GraphDelta::new().insert(1, 5).apply_to(&g);
        assert_eq!(next.num_vertices(), 6);
        assert!(next.has_edge(1, 5));
        assert_eq!(next.degree(4), 0, "intermediate vertices are isolated");
    }

    #[test]
    fn roundtrip_delta_restores_the_original_edge_set() {
        let g = generators::erdos_renyi(30, 0.15, 11);
        let removed: Vec<(Vertex, Vertex)> = g.edges().take(5).collect();
        let mut forward = GraphDelta::new();
        forward.deletes = removed.clone();
        let mut backward = GraphDelta::new();
        backward.inserts = removed;
        let shrunk = forward.apply_to(&g);
        assert_eq!(shrunk.num_edges(), g.num_edges() - 5);
        let restored = backward.apply_to(&shrunk);
        assert_eq!(restored.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(restored.has_edge(u, v));
        }
    }
}
