//! # sisa-graph
//!
//! Graph data structures, generators and dataset stand-ins for the SISA
//! reproduction (Besta et al., MICRO 2021).
//!
//! The crate provides:
//!
//! * [`CsrGraph`] — a compressed-sparse-row graph with sorted neighbourhoods,
//!   the baseline storage format both the paper's hand-tuned algorithms and
//!   SISA's hybrid set-graph are built on.
//! * [`GraphBuilder`] — incremental edge-list construction with deduplication.
//! * [`GraphDelta`] — batched edge insertions/deletions, applied through the
//!   registry's generation-ticking replace path (streaming graph updates).
//! * [`orientation`] — exact and approximate degeneracy orderings (§5.1.5,
//!   Algorithm 6), k-core extraction and degeneracy-ordered orientation, the
//!   optimisation used by the k-clique and Bron–Kerbosch formulations.
//! * [`generators`] — deterministic synthetic graph generators (Erdős–Rényi,
//!   Barabási–Albert, Kronecker/R-MAT, Watts–Strogatz, planted-clique
//!   community graphs and classic topologies).
//! * [`datasets`] — the registry of synthetic stand-ins for the Network
//!   Repository datasets in the paper's Table 7 (the real datasets cannot be
//!   downloaded in this environment; see DESIGN.md §2).
//! * [`degree`] — degree-distribution statistics used to regenerate
//!   Figure 7a.
//! * [`properties`] — reference implementations of simple graph properties
//!   (triangle count, clustering coefficients, connected components) used by
//!   tests to validate both the generators and the mining algorithms.
//! * [`io`] — plain-text edge-list reading and writing.
//! * [`labels`] — vertex/edge labelling for labelled subgraph isomorphism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod datasets;
pub mod degree;
pub mod delta;
pub mod generators;
pub mod io;
pub mod labels;
pub mod orientation;
pub mod properties;
pub mod registry;

pub use csr::{CsrGraph, GraphBuilder};
pub use delta::GraphDelta;
pub use labels::{EdgeLabels, LabeledGraph};
pub use orientation::{approximate_degeneracy_order, degeneracy_order, DegeneracyOrdering};
pub use registry::{GraphLease, GraphRegistry, RegistryConfig};

/// A vertex identifier (re-exported from `sisa-sets`).
pub type Vertex = sisa_sets::Vertex;
