//! Planted-clique community graphs.
//!
//! The graph-mining datasets in the paper's Table 7 — gene-association,
//! brain and economic networks — are characterised by *very dense clusters*
//! and heavy-tailed degree distributions ("the human genome graph has many
//! vertices connected to more than 30% of all other vertices", §9.2). The
//! planted-clique generator reproduces that structure: it overlays a
//! configurable number of (possibly overlapping) cliques on a sparse random
//! background, so that clique-mining workloads have real work to do and the
//! hybrid DB/SA set layout is exercised on both dense and sparse
//! neighbourhoods.

use crate::{CsrGraph, GraphBuilder, Vertex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the planted-clique community generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlantedCliqueConfig {
    /// Number of vertices in the graph.
    pub num_vertices: usize,
    /// Number of cliques to plant.
    pub num_cliques: usize,
    /// Minimum planted-clique size.
    pub min_clique_size: usize,
    /// Maximum planted-clique size (inclusive).
    pub max_clique_size: usize,
    /// Number of uniformly random background edges added on top.
    pub background_edges: usize,
    /// Fraction of each clique's members drawn from previously used vertices,
    /// creating overlapping communities (0.0 = disjoint cliques).
    pub overlap: f64,
}

impl Default for PlantedCliqueConfig {
    fn default() -> Self {
        Self {
            num_vertices: 1000,
            num_cliques: 20,
            min_clique_size: 4,
            max_clique_size: 10,
            background_edges: 2000,
            overlap: 0.15,
        }
    }
}

/// Generates a planted-clique community graph.
///
/// Returns the graph together with the list of planted cliques (each a sorted
/// vertex list), which tests use as ground truth: every planted clique must be
/// contained in some maximal clique reported by the mining algorithms.
#[must_use]
pub fn planted_cliques(cfg: &PlantedCliqueConfig, seed: u64) -> (CsrGraph, Vec<Vec<Vertex>>) {
    assert!(
        cfg.min_clique_size >= 2,
        "cliques need at least two vertices"
    );
    assert!(
        cfg.max_clique_size >= cfg.min_clique_size,
        "max clique size must be at least min clique size"
    );
    assert!(
        cfg.max_clique_size <= cfg.num_vertices,
        "cliques cannot exceed the vertex count"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cfg.num_vertices;
    let mut builder = GraphBuilder::new(n);
    let mut used: Vec<Vertex> = Vec::new();
    let mut cliques: Vec<Vec<Vertex>> = Vec::with_capacity(cfg.num_cliques);

    for _ in 0..cfg.num_cliques {
        let size = rng.random_range(cfg.min_clique_size..=cfg.max_clique_size);
        let mut members: Vec<Vertex> = Vec::with_capacity(size);
        let mut guard = 0usize;
        while members.len() < size && guard < 100 * size {
            guard += 1;
            let reuse = !used.is_empty() && rng.random_bool(cfg.overlap.clamp(0.0, 1.0));
            let v = if reuse {
                used[rng.random_range(0..used.len())]
            } else {
                rng.random_range(0..n as Vertex)
            };
            if !members.contains(&v) {
                members.push(v);
            }
        }
        members.sort_unstable();
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                builder.add_edge(u, v);
            }
        }
        used.extend_from_slice(&members);
        cliques.push(members);
    }

    let mut added = 0usize;
    let mut guard = 0usize;
    while added < cfg.background_edges && guard < 50 * cfg.background_edges.max(1) {
        guard += 1;
        let u = rng.random_range(0..n as Vertex);
        let v = rng.random_range(0..n as Vertex);
        if u != v {
            builder.add_edge(u, v);
            added += 1;
        }
    }

    (builder.build(), cliques)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;
    use crate::properties;

    #[test]
    fn default_config_produces_dense_clusters() {
        let (g, cliques) = planted_cliques(&PlantedCliqueConfig::default(), 123);
        assert_eq!(g.num_vertices(), 1000);
        assert_eq!(cliques.len(), 20);
        // Each planted clique is present.
        for c in &cliques {
            assert!(properties::is_clique(&g, c));
        }
        // The clustering coefficient is far above that of a comparable
        // Erdős–Rényi graph (which would be ≈ average degree / n ≈ 0.006).
        assert!(properties::global_clustering_coefficient(&g) > 0.02);
    }

    #[test]
    fn overlap_creates_hub_vertices() {
        let cfg = PlantedCliqueConfig {
            num_vertices: 200,
            num_cliques: 40,
            min_clique_size: 6,
            max_clique_size: 14,
            background_edges: 100,
            overlap: 0.6,
        };
        let (g, _) = planted_cliques(&cfg, 5);
        let stats = DegreeStats::compute(&g);
        assert!(
            stats.is_heavy_tailed(),
            "max fraction {}",
            stats.max_degree_fraction
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_degenerate_clique_size() {
        let cfg = PlantedCliqueConfig {
            min_clique_size: 1,
            ..PlantedCliqueConfig::default()
        };
        let _ = planted_cliques(&cfg, 0);
    }

    #[test]
    fn zero_background_edges_is_allowed() {
        let cfg = PlantedCliqueConfig {
            num_vertices: 50,
            num_cliques: 3,
            min_clique_size: 3,
            max_clique_size: 5,
            background_edges: 0,
            overlap: 0.0,
        };
        let (g, cliques) = planted_cliques(&cfg, 9);
        let planted_edges: usize = cliques.iter().map(|c| c.len() * (c.len() - 1) / 2).sum();
        // Dedup can only reduce the count.
        assert!(g.num_edges() <= planted_edges);
        assert!(g.num_edges() >= cliques.iter().map(|c| c.len() - 1).sum());
    }
}
