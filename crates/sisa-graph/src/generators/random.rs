//! Randomised graph generators (Erdős–Rényi, Barabási–Albert, Watts–Strogatz,
//! Kronecker/R-MAT, near-complete).
//!
//! All generators are deterministic given their seed, which is required for
//! reproducible experiments: every harness fixes its seeds explicitly.

use crate::{CsrGraph, GraphBuilder, Vertex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, p)`: every unordered pair is an edge with probability `p`.
///
/// Uses geometric skipping so the cost is proportional to the number of edges
/// generated rather than `n²` when `p` is small.
#[must_use]
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut builder = GraphBuilder::new(n);
    if n < 2 || p == 0.0 {
        return builder.build();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    if p >= 1.0 {
        for u in 0..n as Vertex {
            for v in (u + 1)..n as Vertex {
                builder.add_edge(u, v);
            }
        }
        return builder.build();
    }
    // Geometric skipping over the implicit list of all C(n,2) pairs.
    let total_pairs = n as u64 * (n as u64 - 1) / 2;
    let log_q = (1.0 - p).ln();
    let mut idx: i64 = -1;
    loop {
        let r: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let skip = (r.ln() / log_q).floor() as i64 + 1;
        idx += skip;
        if idx as u64 >= total_pairs {
            break;
        }
        let (u, v) = pair_from_index(idx as u64, n as u64);
        builder.add_edge(u as Vertex, v as Vertex);
    }
    builder.build()
}

/// Erdős–Rényi variant that targets an exact number of distinct edges
/// (`G(n, m)` model).
#[must_use]
pub fn erdos_renyi_with_edges(n: usize, m: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_edges);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut builder = GraphBuilder::new(n);
    while chosen.len() < m {
        let u = rng.random_range(0..n as Vertex);
        let v = rng.random_range(0..n as Vertex);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            builder.add_edge(key.0, key.1);
        }
    }
    builder.build()
}

/// Maps a linear index in `0..C(n,2)` to the corresponding unordered pair.
fn pair_from_index(idx: u64, n: u64) -> (u64, u64) {
    // Row u contains (n - 1 - u) pairs. Walk rows; n is small enough here
    // (≤ a few hundred thousand) that the loop is negligible compared to
    // edge insertion.
    let mut u = 0u64;
    let mut remaining = idx;
    loop {
        let row = n - 1 - u;
        if remaining < row {
            return (u, u + 1 + remaining);
        }
        remaining -= row;
        u += 1;
    }
}

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `m_attach` existing vertices chosen
/// proportionally to their degree. Produces the heavy-tailed degree
/// distributions typical of the paper's mining datasets.
#[must_use]
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> CsrGraph {
    let m_attach = m_attach.max(1);
    let seed_size = (m_attach + 1).min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    // Repeated-endpoints list: sampling an index uniformly from it is
    // equivalent to sampling a vertex proportionally to its degree.
    let mut endpoints: Vec<Vertex> = Vec::new();
    for u in 0..seed_size as Vertex {
        for v in (u + 1)..seed_size as Vertex {
            builder.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in seed_size..n {
        let mut targets = std::collections::HashSet::new();
        let mut guard = 0;
        while targets.len() < m_attach.min(v) && guard < 100 * m_attach {
            guard += 1;
            let t = if endpoints.is_empty() {
                rng.random_range(0..v as Vertex)
            } else {
                endpoints[rng.random_range(0..endpoints.len())]
            };
            targets.insert(t);
        }
        for &t in &targets {
            builder.add_edge(v as Vertex, t);
            endpoints.push(v as Vertex);
            endpoints.push(t);
        }
    }
    builder.build()
}

/// Watts–Strogatz small-world graph: a ring lattice where each vertex connects
/// to its `k` nearest neighbours, with each edge rewired with probability
/// `beta`.
#[must_use]
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    if n < 2 {
        return builder.build();
    }
    let half_k = (k / 2).max(1);
    for u in 0..n {
        for offset in 1..=half_k {
            let v = (u + offset) % n;
            if rng.random_bool(beta.clamp(0.0, 1.0)) {
                // Rewire to a uniformly random non-self endpoint.
                let mut w = rng.random_range(0..n);
                if w == u {
                    w = (w + 1) % n;
                }
                builder.add_edge(u as Vertex, w as Vertex);
            } else {
                builder.add_edge(u as Vertex, v as Vertex);
            }
        }
    }
    builder.build()
}

/// A dense "near-complete" graph: the complete graph on `n` vertices with each
/// edge kept independently with probability `density`. This models the very
/// dense small interaction / DIMACS graphs of the paper's Table 7
/// (e.g. `int-antCol*`, `dimacs-c500-9`).
#[must_use]
pub fn near_complete(n: usize, density: f64, seed: u64) -> CsrGraph {
    erdos_renyi(n, density, seed)
}

/// Configuration of the R-MAT / stochastic-Kronecker generator used for the
/// paper's scalability study ("we use Kronecker graphs and vary the number of
/// edges/vertex", §9.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average number of edges per vertex.
    pub edge_factor: usize,
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Probability of recursing into the top-right quadrant.
    pub b: f64,
    /// Probability of recursing into the bottom-left quadrant.
    pub c: f64,
}

impl RmatConfig {
    /// The Graph500-style default parameters `(a, b, c, d) = (0.57, 0.19, 0.19,
    /// 0.05)` at the given scale with 16 edges per vertex.
    #[must_use]
    pub fn default_scale(scale: u32) -> Self {
        Self {
            scale,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }

    /// Number of vertices `2^scale`.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }
}

/// Generates an R-MAT (stochastic Kronecker) graph.
#[must_use]
pub fn kronecker(cfg: &RmatConfig, seed: u64) -> CsrGraph {
    let n = cfg.num_vertices();
    let num_edges = n * cfg.edge_factor;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    for _ in 0..num_edges {
        let (mut lo_u, mut hi_u) = (0usize, n);
        let (mut lo_v, mut hi_v) = (0usize, n);
        while hi_u - lo_u > 1 {
            let r: f64 = rng.random();
            let (du, dv) = if r < cfg.a {
                (0, 0)
            } else if r < cfg.a + cfg.b {
                (0, 1)
            } else if r < cfg.a + cfg.b + cfg.c {
                (1, 0)
            } else {
                (1, 1)
            };
            let mid_u = (lo_u + hi_u) / 2;
            let mid_v = (lo_v + hi_v) / 2;
            if du == 0 {
                hi_u = mid_u;
            } else {
                lo_u = mid_u;
            }
            if dv == 0 {
                hi_v = mid_v;
            } else {
                lo_v = mid_v;
            }
        }
        if lo_u != lo_v {
            builder.add_edge(lo_u as Vertex, lo_v as Vertex);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn erdos_renyi_edge_count_is_near_expectation() {
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi(n, p, 13);
        let expected = (n * (n - 1) / 2) as f64 * p;
        let actual = g.num_edges() as f64;
        assert!(
            (actual - expected).abs() < 0.25 * expected,
            "expected ≈{expected}, got {actual}"
        );
    }

    #[test]
    fn erdos_renyi_extremes() {
        assert_eq!(erdos_renyi(50, 0.0, 1).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1).num_edges(), 45);
        assert_eq!(erdos_renyi(1, 0.5, 1).num_edges(), 0);
    }

    #[test]
    fn erdos_renyi_with_edges_hits_target() {
        let g = erdos_renyi_with_edges(200, 1000, 5);
        assert_eq!(g.num_edges(), 1000);
        let capped = erdos_renyi_with_edges(5, 100, 5);
        assert_eq!(capped.num_edges(), 10);
    }

    #[test]
    fn pair_from_index_is_a_bijection_prefix() {
        let n = 7u64;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..(n * (n - 1) / 2) {
            let (u, v) = pair_from_index(idx, n);
            assert!(u < v && v < n);
            assert!(seen.insert((u, v)));
        }
    }

    #[test]
    fn barabasi_albert_is_heavy_tailed() {
        let g = barabasi_albert(2000, 4, 3);
        assert!(g.num_edges() >= 4 * 1900);
        let stats = DegreeStats::compute(&g);
        // Preferential attachment: hubs far above the mean.
        assert!(stats.skew > 5.0, "skew {}", stats.skew);
    }

    #[test]
    fn watts_strogatz_has_expected_edge_count() {
        let g = watts_strogatz(500, 6, 0.1, 9);
        // Each vertex contributes k/2 = 3 edges (some lost to dedup/rewiring).
        assert!(g.num_edges() > 1200 && g.num_edges() <= 1500);
    }

    #[test]
    fn kronecker_has_skewed_degrees() {
        let g = kronecker(&RmatConfig::default_scale(10), 99);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 4000);
        let stats = DegreeStats::compute(&g);
        assert!(stats.skew > 3.0);
    }

    #[test]
    fn near_complete_density() {
        let g = near_complete(100, 0.9, 4);
        let max = 100 * 99 / 2;
        assert!(g.num_edges() as f64 > 0.8 * max as f64);
    }
}
