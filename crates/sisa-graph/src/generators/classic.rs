//! Classic deterministic topologies (paths, cycles, stars, cliques, grids).
//!
//! These serve two purposes: they are test fixtures with exactly known
//! properties (triangle counts, degeneracy, clique structure), and they are
//! the extreme points the paper's analysis reasons about (e.g. "a star graph
//! has maximum degree n−1 but degeneracy 1", §7.1).

use crate::{CsrGraph, Vertex};

/// A simple path `0 - 1 - ... - (n-1)`.
#[must_use]
pub fn path(n: usize) -> CsrGraph {
    let edges: Vec<(Vertex, Vertex)> = (1..n as Vertex).map(|v| (v - 1, v)).collect();
    CsrGraph::from_edges(n, &edges)
}

/// A cycle on `n ≥ 3` vertices (for `n < 3` it degenerates to a path).
#[must_use]
pub fn cycle(n: usize) -> CsrGraph {
    let mut edges: Vec<(Vertex, Vertex)> = (1..n as Vertex).map(|v| (v - 1, v)).collect();
    if n >= 3 {
        edges.push((n as Vertex - 1, 0));
    }
    CsrGraph::from_edges(n, &edges)
}

/// A star: vertex 0 connected to every other vertex.
#[must_use]
pub fn star(n: usize) -> CsrGraph {
    let edges: Vec<(Vertex, Vertex)> = (1..n as Vertex).map(|v| (0, v)).collect();
    CsrGraph::from_edges(n, &edges)
}

/// The complete graph `K_n`.
#[must_use]
pub fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
    for u in 0..n as Vertex {
        for v in (u + 1)..n as Vertex {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// The complete bipartite graph `K_{a,b}` (parts `0..a` and `a..a+b`).
#[must_use]
pub fn complete_bipartite(a: usize, b: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a as Vertex {
        for v in 0..b as Vertex {
            edges.push((u, a as Vertex + v));
        }
    }
    CsrGraph::from_edges(a + b, &edges)
}

/// A `rows × cols` 4-neighbour grid.
#[must_use]
pub fn grid(rows: usize, cols: usize) -> CsrGraph {
    let id = |r: usize, c: usize| (r * cols + c) as Vertex;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    CsrGraph::from_edges(rows * cols, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orientation::degeneracy_order;
    use crate::properties::triangle_count;

    #[test]
    fn path_and_cycle_edge_counts() {
        assert_eq!(path(10).num_edges(), 9);
        assert_eq!(cycle(10).num_edges(), 10);
        assert_eq!(cycle(2).num_edges(), 1);
        assert_eq!(triangle_count(&cycle(3)), 1);
        assert_eq!(triangle_count(&cycle(5)), 0);
    }

    #[test]
    fn star_has_degeneracy_one_and_max_degree_n_minus_one() {
        let g = star(30);
        assert_eq!(g.max_degree(), 29);
        assert_eq!(degeneracy_order(&g).degeneracy, 1);
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn complete_graph_counts() {
        let g = complete(7);
        assert_eq!(g.num_edges(), 21);
        assert_eq!(triangle_count(&g), 35);
        assert_eq!(degeneracy_order(&g).degeneracy, 6);
    }

    #[test]
    fn bipartite_is_triangle_free() {
        let g = complete_bipartite(4, 6);
        assert_eq!(g.num_edges(), 24);
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(g.degree(0), 6);
        assert_eq!(g.degree(4), 4);
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // 3*3 horizontal + 2*4 vertical = 17 edges.
        assert_eq!(g.num_edges(), 17);
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(g.max_degree(), 4);
    }
}
