//! Deterministic synthetic graph generators.
//!
//! The paper's evaluation uses Network Repository datasets plus Kronecker
//! graphs for the scalability study (§9.2). Since the original datasets are
//! not redistributable here, the [`crate::datasets`] registry composes these
//! generators into *stand-ins* with matching size and structural character.
//! Every generator is deterministic given its seed.

mod classic;
mod communities;
mod random;

pub use classic::{complete, complete_bipartite, cycle, grid, path, star};
pub use communities::{planted_cliques, PlantedCliqueConfig};
pub use random::{
    barabasi_albert, erdos_renyi, erdos_renyi_with_edges, kronecker, near_complete, watts_strogatz,
    RmatConfig,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn generators_are_deterministic() {
        let a = erdos_renyi(100, 0.05, 42);
        let b = erdos_renyi(100, 0.05, 42);
        assert_eq!(a.num_edges(), b.num_edges());
        let c = barabasi_albert(100, 3, 9);
        let d = barabasi_albert(100, 3, 9);
        assert_eq!(c.num_edges(), d.num_edges());
        let e = kronecker(&RmatConfig::default_scale(8), 5);
        let f = kronecker(&RmatConfig::default_scale(8), 5);
        assert_eq!(e.num_edges(), f.num_edges());
    }

    #[test]
    fn different_seeds_differ() {
        let a = erdos_renyi(200, 0.05, 1);
        let b = erdos_renyi(200, 0.05, 2);
        // Extremely unlikely to coincide exactly in structure.
        let same_everywhere = a.vertices().all(|v| a.neighbors(v) == b.neighbors(v));
        assert!(!same_everywhere);
    }

    #[test]
    fn planted_cliques_contain_their_cliques() {
        let cfg = PlantedCliqueConfig {
            num_vertices: 300,
            num_cliques: 10,
            min_clique_size: 5,
            max_clique_size: 12,
            background_edges: 400,
            overlap: 0.2,
        };
        let (g, cliques) = planted_cliques(&cfg, 77);
        assert_eq!(g.num_vertices(), 300);
        assert_eq!(cliques.len(), 10);
        for clique in &cliques {
            assert!(properties::is_clique(&g, clique), "planted clique missing");
            assert!(clique.len() >= 5 && clique.len() <= 12);
        }
        // Planted cliques create many triangles.
        assert!(properties::triangle_count(&g) > 50);
    }
}
