//! Degree-distribution statistics.
//!
//! Figure 7a of the paper contrasts the degree distributions of graphs
//! commonly used in graph *mining* (very heavy tails, vertices connected to a
//! large fraction of the graph) with graphs used in general graph processing
//! (much lighter tails). This module computes the statistics that the
//! `fig7a_degrees` harness prints: the degree histogram, tail-heaviness
//! summaries and the fraction of the universe covered by the largest
//! neighbourhood.

use crate::CsrGraph;

/// Summary statistics of a graph's degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of (undirected) edges.
    pub num_edges: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Median degree.
    pub median_degree: usize,
    /// 99th-percentile degree.
    pub p99_degree: usize,
    /// Maximum degree as a fraction of `n` (the paper highlights graphs where
    /// single vertices connect to >30% of the graph).
    pub max_degree_fraction: f64,
    /// Fraction of vertices whose degree exceeds 10% of `n`.
    pub heavy_vertex_fraction: f64,
    /// Skewness proxy: max degree divided by mean degree.
    pub skew: f64,
}

impl DegreeStats {
    /// Computes the statistics for `g`.
    #[must_use]
    pub fn compute(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut degrees = g.degree_sequence();
        degrees.sort_unstable();
        let max_degree = degrees.last().copied().unwrap_or(0);
        let mean = if n == 0 {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / n as f64
        };
        let median = if n == 0 { 0 } else { degrees[n / 2] };
        let p99 = if n == 0 {
            0
        } else {
            degrees[((n as f64 * 0.99) as usize).min(n - 1)]
        };
        let heavy = if n == 0 {
            0.0
        } else {
            degrees
                .iter()
                .filter(|&&d| d as f64 >= 0.1 * n as f64)
                .count() as f64
                / n as f64
        };
        Self {
            num_vertices: n,
            num_edges: g.num_edges(),
            max_degree,
            mean_degree: mean,
            median_degree: median,
            p99_degree: p99,
            max_degree_fraction: if n == 0 {
                0.0
            } else {
                max_degree as f64 / n as f64
            },
            heavy_vertex_fraction: heavy,
            skew: if mean > 0.0 {
                max_degree as f64 / mean
            } else {
                0.0
            },
        }
    }

    /// A coarse classification matching the paper's Figure 7a narrative: does
    /// the distribution have a "very heavy tail" (single vertices adjacent to
    /// a large fraction of the graph) or a light tail?
    #[must_use]
    pub fn is_heavy_tailed(&self) -> bool {
        self.max_degree_fraction >= 0.10
    }
}

/// A log-binned degree histogram: `bins[i]` counts vertices whose degree lies
/// in `[2^i, 2^(i+1))` (bin 0 additionally contains degree-0 vertices).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegreeHistogram {
    /// Vertex counts per logarithmic degree bin.
    pub bins: Vec<usize>,
}

impl DegreeHistogram {
    /// Builds the histogram for `g`.
    #[must_use]
    pub fn compute(g: &CsrGraph) -> Self {
        let mut bins: Vec<usize> = Vec::new();
        for v in g.vertices() {
            let d = g.degree(v);
            let bin = if d <= 1 {
                0
            } else {
                (usize::BITS - 1 - d.leading_zeros()) as usize
            };
            if bin >= bins.len() {
                bins.resize(bin + 1, 0);
            }
            bins[bin] += 1;
        }
        Self { bins }
    }

    /// Lower bound of the degree range covered by bin `i`.
    #[must_use]
    pub fn bin_lower_bound(i: usize) -> usize {
        1usize << i
    }

    /// Total number of vertices counted.
    #[must_use]
    pub fn total(&self) -> usize {
        self.bins.iter().sum()
    }
}

/// Frequency of every distinct degree value, as `(degree, count)` pairs sorted
/// by degree — the exact data behind the paper's Figure 7a scatter plots.
#[must_use]
pub fn degree_frequency(g: &CsrGraph) -> Vec<(usize, usize)> {
    let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for v in g.vertices() {
        *counts.entry(g.degree(v)).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::CsrGraph;

    #[test]
    fn stats_of_a_star_are_heavy_tailed() {
        let edges: Vec<(u32, u32)> = (1..100u32).map(|v| (0, v)).collect();
        let g = CsrGraph::from_edges(100, &edges);
        let stats = DegreeStats::compute(&g);
        assert_eq!(stats.max_degree, 99);
        assert_eq!(stats.median_degree, 1);
        assert!(stats.is_heavy_tailed());
        assert!(stats.skew > 10.0);
        assert!((stats.max_degree_fraction - 0.99).abs() < 1e-9);
    }

    #[test]
    fn stats_of_a_ring_are_light_tailed() {
        let g = generators::cycle(1000);
        let stats = DegreeStats::compute(&g);
        assert_eq!(stats.max_degree, 2);
        assert_eq!(stats.median_degree, 2);
        assert!(!stats.is_heavy_tailed());
        assert!((stats.mean_degree - 2.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_counts_every_vertex_once() {
        let g = generators::barabasi_albert(500, 3, 5);
        let hist = DegreeHistogram::compute(&g);
        assert_eq!(hist.total(), 500);
        assert!(hist.bins.len() >= 3);
        assert_eq!(DegreeHistogram::bin_lower_bound(4), 16);
    }

    #[test]
    fn degree_frequency_sums_to_n() {
        let g = generators::erdos_renyi(300, 0.02, 1);
        let freq = degree_frequency(&g);
        let total: usize = freq.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 300);
        // Sorted by degree.
        assert!(freq.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn empty_graph_stats() {
        let g = CsrGraph::from_edges(0, &[]);
        let stats = DegreeStats::compute(&g);
        assert_eq!(stats.max_degree, 0);
        assert_eq!(stats.mean_degree, 0.0);
        assert!(!stats.is_heavy_tailed());
    }
}
