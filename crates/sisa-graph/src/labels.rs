//! Vertex and edge labelling for labelled graph mining.
//!
//! The paper uses subgraph isomorphism (§5.1.6) to demonstrate that SISA
//! supports labelled graphs: vertex labels are kept "as a sparse array ...
//! indexed by vertex IDs" (§6.3.1) and edge labels are matched inside the VF2
//! feasibility check. The evaluation assigns each vertex "a label selected at
//! random out of 3 ones" (Figure 6, `si-4s-L`).

use crate::{CsrGraph, Vertex};
use std::collections::HashMap;

/// Edge labels stored as a map keyed by the *canonical* endpoint pair
/// `(min(u, v), max(u, v))`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeLabels {
    labels: HashMap<(Vertex, Vertex), u32>,
}

impl EdgeLabels {
    /// Creates an empty edge-label table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the label of the undirected edge `{u, v}`.
    pub fn set(&mut self, u: Vertex, v: Vertex, label: u32) {
        self.labels.insert(Self::key(u, v), label);
    }

    /// Returns the label of the undirected edge `{u, v}`, if present.
    #[must_use]
    pub fn get(&self, u: Vertex, v: Vertex) -> Option<u32> {
        self.labels.get(&Self::key(u, v)).copied()
    }

    /// Number of labelled edges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no edge is labelled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    fn key(u: Vertex, v: Vertex) -> (Vertex, Vertex) {
        if u <= v {
            (u, v)
        } else {
            (v, u)
        }
    }
}

/// A graph bundled with its vertex labels and (optional) edge labels, the
/// input type of labelled subgraph isomorphism.
#[derive(Clone, Debug)]
pub struct LabeledGraph {
    /// The underlying structure (which itself carries the vertex labels).
    pub graph: CsrGraph,
    /// Edge labels; empty means "all edges share one implicit label".
    pub edge_labels: EdgeLabels,
}

impl LabeledGraph {
    /// Wraps a vertex-labelled graph with no edge labels.
    #[must_use]
    pub fn new(graph: CsrGraph) -> Self {
        Self {
            graph,
            edge_labels: EdgeLabels::new(),
        }
    }

    /// Wraps a graph and assigns every vertex a label drawn uniformly from
    /// `0..num_labels` with a deterministic seed — exactly the labelled-SI
    /// setup of the paper's evaluation.
    #[must_use]
    pub fn with_random_vertex_labels(graph: CsrGraph, num_labels: u32, seed: u64) -> Self {
        let n = graph.num_vertices();
        let labels: Vec<u32> = (0..n)
            .map(|v| (splitmix64(seed.wrapping_add(v as u64)) % u64::from(num_labels)) as u32)
            .collect();
        Self::new(graph.with_vertex_labels(labels))
    }

    /// The label of vertex `v` (0 when the graph is unlabelled).
    #[must_use]
    pub fn vertex_label(&self, v: Vertex) -> u32 {
        self.graph.vertex_label(v).unwrap_or(0)
    }

    /// The label of edge `{u, v}` (0 when unlabelled).
    #[must_use]
    pub fn edge_label(&self, u: Vertex, v: Vertex) -> u32 {
        self.edge_labels.get(u, v).unwrap_or(0)
    }

    /// Whether any vertex labels are present.
    #[must_use]
    pub fn has_vertex_labels(&self) -> bool {
        self.graph.vertex_labels().is_some()
    }
}

/// SplitMix64: a tiny, high-quality mixing function used for deterministic
/// label assignment without pulling a full RNG into this module.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_labels_are_symmetric() {
        let mut el = EdgeLabels::new();
        el.set(3, 1, 42);
        assert_eq!(el.get(1, 3), Some(42));
        assert_eq!(el.get(3, 1), Some(42));
        assert_eq!(el.get(0, 1), None);
        assert_eq!(el.len(), 1);
        assert!(!el.is_empty());
    }

    #[test]
    fn random_vertex_labels_are_deterministic_and_in_range() {
        let g = CsrGraph::from_edges(100, &[(0, 1), (1, 2)]);
        let a = LabeledGraph::with_random_vertex_labels(g.clone(), 3, 7);
        let b = LabeledGraph::with_random_vertex_labels(g, 3, 7);
        assert!(a.has_vertex_labels());
        for v in 0..100u32 {
            assert!(a.vertex_label(v) < 3);
            assert_eq!(a.vertex_label(v), b.vertex_label(v));
        }
        // With 100 vertices and 3 labels, all labels should occur.
        let mut seen = [false; 3];
        for v in 0..100u32 {
            seen[a.vertex_label(v) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unlabelled_defaults_to_zero() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let lg = LabeledGraph::new(g);
        assert!(!lg.has_vertex_labels());
        assert_eq!(lg.vertex_label(2), 0);
        assert_eq!(lg.edge_label(0, 1), 0);
    }
}
