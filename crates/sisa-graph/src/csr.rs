//! Compressed-sparse-row graph storage.
//!
//! The CSR layout is the baseline storage format in the paper's evaluation
//! ("Standard codes often use some form of CSR", Table 4): an `offsets` array
//! of length `n + 1` and a `targets` array holding all neighbourhoods
//! back-to-back, each sorted by vertex identifier.

use crate::Vertex;

/// An immutable graph in compressed-sparse-row form.
///
/// The graph may be *undirected* (every edge `{u, v}` is stored in both
/// neighbourhoods) or *directed* (arcs are stored only at their source, as
/// produced, e.g., by [`CsrGraph::oriented_by`]). Neighbourhoods are always
/// sorted, which the set-centric algorithms rely on for merge intersections.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<Vertex>,
    /// Number of undirected edges (or arcs, for a directed graph).
    edge_count: usize,
    directed: bool,
    vertex_labels: Option<Vec<u32>>,
}

impl CsrGraph {
    /// Builds an undirected graph with `n` vertices from an edge list.
    ///
    /// Self-loops are dropped and duplicate edges are deduplicated. Vertex
    /// identifiers must be `< n`.
    #[must_use]
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Self {
        let mut builder = GraphBuilder::new(n);
        for &(u, v) in edges {
            builder.add_edge(u, v);
        }
        builder.build()
    }

    /// Builds a directed graph with `n` vertices from an arc list.
    ///
    /// Self-loops are dropped and duplicate arcs are deduplicated.
    #[must_use]
    pub fn from_directed_edges(n: usize, arcs: &[(Vertex, Vertex)]) -> Self {
        let mut adj: Vec<Vec<Vertex>> = vec![Vec::new(); n];
        for &(u, v) in arcs {
            if u != v {
                adj[u as usize].push(v);
            }
        }
        Self::from_adjacency(adj, true, None)
    }

    /// Builds a graph from per-vertex adjacency lists.
    ///
    /// Lists are sorted and deduplicated. When `directed` is false the caller
    /// must have included each edge in both endpoint lists.
    #[must_use]
    pub fn from_adjacency(
        mut adj: Vec<Vec<Vertex>>,
        directed: bool,
        vertex_labels: Option<Vec<u32>>,
    ) -> Self {
        let n = adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut targets = Vec::new();
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            targets.extend_from_slice(list);
            offsets.push(targets.len());
        }
        let edge_count = if directed {
            targets.len()
        } else {
            targets.len() / 2
        };
        if let Some(labels) = &vertex_labels {
            assert_eq!(labels.len(), n, "one label per vertex required");
        }
        Self {
            offsets,
            targets,
            edge_count,
            directed,
            vertex_labels,
        }
    }

    /// Number of vertices `n`.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m` (or arcs for a directed graph).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edge_count
    }

    /// Whether the graph is directed.
    #[must_use]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// The (out-)degree of vertex `v`.
    #[must_use]
    pub fn degree(&self, v: Vertex) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The sorted (out-)neighbourhood of vertex `v`.
    #[must_use]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the edge (or arc) `u → v` exists; `O(log d(u))`.
    #[must_use]
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The maximum (out-)degree `d`.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v as Vertex))
            .max()
            .unwrap_or(0)
    }

    /// The average degree `2m / n` (or `m / n` for directed graphs).
    #[must_use]
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        self.targets.len() as f64 / self.num_vertices() as f64
    }

    /// All vertex identifiers `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        0..self.num_vertices() as Vertex
    }

    /// Iterates over every stored (directed) arc `(u, v)`.
    ///
    /// For an undirected graph every edge appears twice, once per direction.
    pub fn arcs(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        self.vertices()
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Iterates over every undirected edge `(u, v)` with `u < v`.
    ///
    /// For a directed graph this simply filters arcs with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        self.arcs().filter(|&(u, v)| u < v)
    }

    /// The degree sequence, indexed by vertex.
    #[must_use]
    pub fn degree_sequence(&self) -> Vec<usize> {
        (0..self.num_vertices())
            .map(|v| self.degree(v as Vertex))
            .collect()
    }

    /// The vertex label of `v`, if the graph is labelled.
    #[must_use]
    pub fn vertex_label(&self, v: Vertex) -> Option<u32> {
        self.vertex_labels.as_ref().map(|l| l[v as usize])
    }

    /// All vertex labels, if present.
    #[must_use]
    pub fn vertex_labels(&self) -> Option<&[u32]> {
        self.vertex_labels.as_deref()
    }

    /// Returns a copy of the graph carrying the given vertex labels.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one label per vertex is supplied.
    #[must_use]
    pub fn with_vertex_labels(mut self, labels: Vec<u32>) -> Self {
        assert_eq!(labels.len(), self.num_vertices());
        self.vertex_labels = Some(labels);
        self
    }

    /// Orients an undirected graph into a DAG: the arc `u → v` is kept iff
    /// `rank[u] < rank[v]`.
    ///
    /// With `rank` being a degeneracy ordering this is exactly the
    /// degeneracy-ordered orientation used by the k-clique and Bron–Kerbosch
    /// algorithms (§5.1.3, §7.1): it makes the graph acyclic and bounds the
    /// out-degree by the degeneracy `c`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` does not provide one rank per vertex.
    #[must_use]
    pub fn oriented_by(&self, rank: &[usize]) -> CsrGraph {
        assert_eq!(rank.len(), self.num_vertices());
        let n = self.num_vertices();
        let mut adj: Vec<Vec<Vertex>> = vec![Vec::new(); n];
        for u in self.vertices() {
            for &v in self.neighbors(u) {
                if rank[u as usize] < rank[v as usize] {
                    adj[u as usize].push(v);
                }
            }
        }
        CsrGraph::from_adjacency(adj, true, self.vertex_labels.clone())
    }

    /// The subgraph induced on `keep`, relabelling vertices to `0..keep.len()`.
    ///
    /// Returns the induced graph and the mapping from new to old identifiers.
    #[must_use]
    pub fn induced_subgraph(&self, keep: &[Vertex]) -> (CsrGraph, Vec<Vertex>) {
        let mut old_to_new = vec![usize::MAX; self.num_vertices()];
        for (new, &old) in keep.iter().enumerate() {
            old_to_new[old as usize] = new;
        }
        let mut adj: Vec<Vec<Vertex>> = vec![Vec::new(); keep.len()];
        for (new, &old) in keep.iter().enumerate() {
            for &nbr in self.neighbors(old) {
                let mapped = old_to_new[nbr as usize];
                if mapped != usize::MAX {
                    adj[new].push(mapped as Vertex);
                }
            }
        }
        let labels = self
            .vertex_labels
            .as_ref()
            .map(|l| keep.iter().map(|&v| l[v as usize]).collect());
        (
            CsrGraph::from_adjacency(adj, self.directed, labels),
            keep.to_vec(),
        )
    }

    /// Estimated in-memory footprint of the CSR arrays, in bytes.
    ///
    /// Used by the hybrid set-graph to enforce the paper's "at most 10% extra
    /// storage on top of CSR" budget (§6.1, §9.1).
    #[must_use]
    pub fn csr_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<Vertex>()
    }

    /// The total number of stored arcs (`Σ_v d(v)`).
    #[must_use]
    pub fn total_stored_arcs(&self) -> usize {
        self.targets.len()
    }
}

/// Incremental builder for undirected [`CsrGraph`]s.
///
/// Collects edges, drops self-loops, deduplicates, and produces a CSR graph
/// with sorted neighbourhoods.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    adj: Vec<Vec<Vertex>>,
    vertex_labels: Option<Vec<u32>>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            adj: vec![Vec::new(); n],
            vertex_labels: None,
        }
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are silently ignored.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) -> &mut Self {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) outside vertex range 0..{}",
            self.n
        );
        if u != v {
            self.adj[u as usize].push(v);
            self.adj[v as usize].push(u);
        }
        self
    }

    /// Adds every edge from the iterator.
    pub fn add_edges(&mut self, edges: impl IntoIterator<Item = (Vertex, Vertex)>) -> &mut Self {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
        self
    }

    /// Sets vertex labels (one per vertex).
    pub fn set_vertex_labels(&mut self, labels: Vec<u32>) -> &mut Self {
        assert_eq!(labels.len(), self.n);
        self.vertex_labels = Some(labels);
        self
    }

    /// Number of vertices the builder was created with.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Finalises the builder into an undirected [`CsrGraph`].
    #[must_use]
    pub fn build(self) -> CsrGraph {
        CsrGraph::from_adjacency(self.adj, false, self.vertex_labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> CsrGraph {
        // 0-1, 1-2, 0-2 triangle, plus 2-3 tail.
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(!g.is_directed());
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.average_degree() - 2.0).abs() < 1e-9);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn duplicate_edges_and_self_loops_are_dropped() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
        assert_eq!(g.arcs().count(), 8);
    }

    #[test]
    fn orientation_by_rank_is_acyclic_and_halves_arcs() {
        let g = triangle_plus_tail();
        let rank = vec![0usize, 1, 2, 3];
        let d = g.oriented_by(&rank);
        assert!(d.is_directed());
        assert_eq!(d.num_edges(), 4);
        assert_eq!(d.neighbors(0), &[1, 2]);
        assert_eq!(d.neighbors(3), &[] as &[Vertex]);
        // No arc goes from higher rank to lower rank.
        for (u, v) in d.arcs() {
            assert!(rank[u as usize] < rank[v as usize]);
        }
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = triangle_plus_tail();
        let (sub, map) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2); // edges 1-2 and 2-3 survive
        assert_eq!(map, vec![1, 2, 3]);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn directed_construction() {
        let g = CsrGraph::from_directed_edges(3, &[(0, 1), (1, 2), (1, 2), (2, 2)]);
        assert!(g.is_directed());
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(2), &[] as &[Vertex]);
    }

    #[test]
    fn labels_are_carried() {
        let g = triangle_plus_tail().with_vertex_labels(vec![7, 8, 9, 9]);
        assert_eq!(g.vertex_label(0), Some(7));
        assert_eq!(g.vertex_label(3), Some(9));
        let (sub, _) = g.induced_subgraph(&[3, 0]);
        assert_eq!(sub.vertex_label(0), Some(9));
        assert_eq!(sub.vertex_label(1), Some(7));
        let oriented = g.oriented_by(&[0, 1, 2, 3]);
        assert_eq!(oriented.vertex_label(1), Some(8));
    }

    #[test]
    fn builder_collects_edges() {
        let mut b = GraphBuilder::new(5);
        b.add_edges([(0, 1), (1, 2), (3, 4)]);
        b.add_edge(0, 4);
        assert_eq!(b.num_vertices(), 5);
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 4]);
    }

    #[test]
    fn csr_bytes_accounts_offsets_and_targets() {
        let g = triangle_plus_tail();
        let expected = 5 * std::mem::size_of::<usize>() + 8 * std::mem::size_of::<Vertex>();
        assert_eq!(g.csr_bytes(), expected);
        assert_eq!(g.total_stored_arcs(), 8);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }
}
