//! Offline vendored subset of the `serde_json` API.
//!
//! Renders and parses the vendored serde shim's [`serde::Content`] tree as
//! JSON. Implements exactly what the SISA reproduction's bench outputs need:
//! [`to_string`], [`to_string_pretty`], [`from_str`] and a [`Value`] alias.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Content, Deserialize, Serialize};
use std::fmt::Write as _;

/// A parsed JSON value (alias for the serde shim's content tree).
pub type Value = Content;

/// Error produced by JSON rendering or parsing.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
/// Infallible for the shim's data model; the `Result` mirrors the real API.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
/// Infallible for the shim's data model; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses `input` as JSON and reconstructs a `T`.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let content = parse_value(input)?;
    Ok(T::from_content(&content)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            let _ = write!(out, "{v:.1}");
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        // JSON has no Inf/NaN; the real crate errors, the shim emits null.
        out.push_str("null");
    }
}

fn write_value(value: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
        None => ("", String::new(), String::new()),
    };
    match value {
        Content::Null => out.push_str("null"),
        Content::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        Content::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::F64(v) => write_f64(*v, out),
        Content::Str(v) => write_escaped(v, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(input: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".to_string()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Content::Null),
            b't' => self.literal("true", Content::Bool(true)),
            b'f' => self.literal("false", Content::Bool(false)),
            b'"' => self.string().map(Content::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".to_string()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let mut code = self.hex_escape()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a low-surrogate \uXXXX must
                                // follow; combine them into one code point.
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(Error("unpaired surrogate".to_string()));
                                }
                                self.pos += 2;
                                let low = self.hex_escape()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error("invalid low surrogate".to_string()));
                                }
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".to_string()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte stream.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| Error("invalid UTF-8 in string".to_string()))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn hex_escape(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| Error("bad \\u escape".to_string()))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".to_string()))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if text.is_empty() {
            return Err(Error(format!("expected value at byte {start}")));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = Content::Map(vec![
            ("n".to_string(), Content::U64(3)),
            ("p".to_string(), Content::F64(0.5)),
            (
                "tags".to_string(),
                Content::Seq(vec![Content::Str("a".into()), Content::Str("b".into())]),
            ),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"n":3,"p":0.5,"tags":["a","b"]}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"n\": 3"));
    }

    #[test]
    fn parses_what_it_renders() {
        let text = r#"{"a": 1, "b": [true, null, -2, 1.5], "c": "x\ny"}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.get("a"), Some(&Content::U64(1)));
        assert_eq!(
            v.get("b"),
            Some(&Content::Seq(vec![
                Content::Bool(true),
                Content::Null,
                Content::I64(-2),
                Content::F64(1.5)
            ]))
        );
        assert_eq!(v.get("c"), Some(&Content::Str("x\ny".to_string())));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn decodes_surrogate_pair_escapes() {
        let escaped: Value = from_str(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(escaped, Content::Str("\u{1F600}".to_string()));
        let raw: Value = from_str("\"\u{1F600}\"").unwrap();
        assert_eq!(raw, Content::Str("\u{1F600}".to_string()));
        assert!(from_str::<Value>(r#""\ud83d""#).is_err(), "unpaired high");
        assert!(
            from_str::<Value>(r#""\ud83dA""#).is_err(),
            "bad low surrogate"
        );
    }
}
