//! Offline vendored subset of the `proptest` property-testing API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the API surface the SISA property tests use: the
//! [`proptest!`] macro, the [`Strategy`] trait with range / collection /
//! `prop_map` / `Just` strategies, and the `prop_assert*` macros. Inputs are
//! generated from a deterministic per-test seed (derived from the test name
//! and case index), so failures reproduce across runs; there is no shrinking
//! — the failing inputs are printed verbatim instead.
//!
//! The number of cases per test defaults to 256 and can be overridden with
//! the `PROPTEST_CASES` environment variable, like the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A source of generated test inputs.
///
/// The shim generates each case independently from a seeded RNG; there is no
/// value tree and no shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy producing a fully random value of a primitive type.
#[must_use]
pub fn any<T: rand::Standard + Debug>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard + Debug> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random()
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for [`BTreeSet`]s with element strategy `element` and a size
    /// drawn from `size`.
    ///
    /// If the element universe is too small to reach the drawn size, the set
    /// is as large as repeated sampling can make it (mirroring the real
    /// crate's behaviour of tolerating duplicate draws).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Clone,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Clone + Debug,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = rng.random_range(self.size.clone());
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Strategy for `Vec`s with element strategy `element` and a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Returns the number of cases to run per property test.
#[must_use]
pub fn test_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Builds the deterministic RNG for one test case.
#[must_use]
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Drop guard that prints the generated inputs when a case panics.
pub struct FailureReport {
    test_name: &'static str,
    case: u32,
    inputs: String,
}

impl FailureReport {
    /// Arms a report for one case; `inputs` is the pre-rendered debug text.
    #[must_use]
    pub fn new(test_name: &'static str, case: u32, inputs: String) -> Self {
        FailureReport {
            test_name,
            case,
            inputs,
        }
    }
}

impl Drop for FailureReport {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest shim: {} failed at case {}/{} with inputs:\n  {}",
                self.test_name,
                self.case,
                test_cases(),
                self.inputs
            );
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { ... } }`.
///
/// Each test runs [`test_cases`] deterministic cases; failing inputs are
/// printed (no shrinking).
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cases = $crate::test_cases();
            for case in 0..cases {
                let mut rng = $crate::test_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let __report = $crate::FailureReport::new(
                    stringify!($name),
                    case,
                    format!(
                        concat!($(stringify!($arg), " = {:?}\n  "),+),
                        $(&$arg),+
                    ),
                );
                { $body }
                drop(__report);
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn btree_sets_respect_bounds(s in collection::btree_set(0u32..100, 0..50)) {
            prop_assert!(s.len() < 50);
            prop_assert!(s.iter().all(|&v| v < 100));
        }

        #[test]
        fn prop_map_applies(v in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn deterministic_rng_per_case() {
        use crate::Strategy;
        let s = collection::vec(0u32..1000, 0..20);
        let a = s.generate(&mut crate::test_rng("t", 3));
        let b = s.generate(&mut crate::test_rng("t", 3));
        assert_eq!(a, b);
    }
}
