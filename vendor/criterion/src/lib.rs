//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the API surface the SISA benches use — [`Criterion`],
//! [`BenchmarkId`], benchmark groups, `bench_function` / `bench_with_input`,
//! `Bencher::iter` and the [`criterion_group!`] / [`criterion_main!`] macros
//! — backed by a simple warmup-then-measure timing loop that prints median
//! and mean wall-clock time per iteration. It has no statistics engine, no
//! HTML reports and no saved baselines; it exists so `cargo bench` runs the
//! same sources the real crate would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group, `name/parameter`.
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Drives the timing loop for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after a short
    /// warmup; each sample batches enough iterations to be measurable.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and batch-size calibration: aim for samples of ~2 ms.
        let calibration_start = Instant::now();
        let mut iters_per_batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(2) || iters_per_batch >= 1 << 30 {
                break;
            }
            if calibration_start.elapsed() > Duration::from_millis(500) {
                break;
            }
            iters_per_batch *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / iters_per_batch as u32);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{label:<50} median {median:>12?}  mean {mean:>12?}  ({} samples)",
            sorted.len()
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark identified by `id` (any displayable name).
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Finishes the group (a no-op in the shim; mirrors the real API).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver (shim: configuration container + printer).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== benchmark group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring the real macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_produces_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0, "routine should have executed");
    }
}
