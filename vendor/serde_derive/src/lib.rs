//! Offline vendored `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are unavailable in
//! this offline build environment, so the field list is extracted from the
//! raw token stream by hand. Only non-generic structs with named fields are
//! supported — exactly the shapes the SISA cost-model configs use. Deriving
//! on anything else produces a compile error naming this limitation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    fields: Vec<String>,
}

/// Parses `struct Name { a: T, b: U, ... }` out of a derive input stream.
///
/// Attributes (including doc comments) and visibility modifiers on the struct
/// and its fields are skipped; generics are rejected.
fn parse_named_struct(input: TokenStream) -> Result<StructShape, String> {
    let mut tokens = input.into_iter().peekable();
    let mut name = None;
    while let Some(tree) = tokens.next() {
        match &tree {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => return Err(format!("expected struct name, found {other:?}")),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                return Err("only structs with named fields are supported".to_string());
            }
            _ => {}
        }
    }
    let name = name.ok_or_else(|| "no `struct` keyword found".to_string())?;

    let mut body = None;
    for tree in tokens.by_ref() {
        match tree {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                return Err("generic structs are not supported".to_string());
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                body = Some(g.stream());
                break;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                return Err("tuple structs are not supported".to_string());
            }
            _ => {}
        }
    }
    let body = body.ok_or_else(|| "no braced field list found".to_string())?;

    // Split the body at top-level commas; within each field take the last
    // identifier before the first top-level `:` (this skips visibility
    // modifiers like `pub` / `pub(crate)` and `#[...]` attributes).
    let mut fields = Vec::new();
    let mut last_ident: Option<String> = None;
    let mut in_type = false;
    let mut angle_depth = 0u32;
    let mut prev_was_dash = false;
    for tree in body {
        let is_dash = matches!(&tree, TokenTree::Punct(p) if p.as_char() == '-');
        match tree {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                in_type = false;
                last_ident = None;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && !in_type && angle_depth == 0 => {
                match last_ident.take() {
                    Some(id) => fields.push(id),
                    None => return Err("field without a name".to_string()),
                }
                in_type = true;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            // `>` closes a generic bracket unless it is the tail of a `->`
            // in a function-pointer type; never underflow on stray `>`s.
            TokenTree::Punct(p) if p.as_char() == '>' && !prev_was_dash => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Ident(id) if !in_type => last_ident = Some(id.to_string()),
            _ => {}
        }
        prev_was_dash = is_dash;
    }
    Ok(StructShape { name, fields })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives the shim `serde::Serialize` (a `to_content` impl) for a
/// non-generic struct with named fields.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_named_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&format!("#[derive(Serialize)] shim: {e}")),
    };
    let entries: String = shape
        .fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f})),"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Map(vec![{entries}])\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .unwrap()
}

/// Derives the shim `serde::Deserialize` (a `from_content` impl) for a
/// non-generic struct with named fields.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_named_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&format!("#[derive(Deserialize)] shim: {e}")),
    };
    let fields: String = shape
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_content(\n\
                     content.get(\"{f}\").ok_or_else(|| \
                         ::serde::Error::custom(\"missing field `{f}`\"))?,\n\
                 )?,"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(content: &::serde::Content) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 Ok({name} {{ {fields} }})\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .unwrap()
}
