//! Offline vendored subset of the `rand` 0.9 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the exact API surface the SISA reproduction uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng::random`] / [`Rng::random_range`] / [`Rng::random_bool`] sampling
//! methods — backed by a xoshiro256** generator. It is deterministic for a
//! given seed, which is all the reproduction needs (seeded graph generators
//! and seeded workload perturbation).
//!
//! This is **not** a cryptographic RNG and intentionally implements only the
//! subset of the real crate that the workspace consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the generator's raw bit stream
/// (the shim's equivalent of sampling from `StandardUniform`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits mapped to [0, 1), as the real crate does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types that support uniform range sampling.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniformly samples from `[low, high)`; `high` must be strictly greater
    /// than `low`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniformly samples from `[low, high]` (inclusive).
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let span = (high as u64) - (low as u64);
                low + (sample_below(rng, span) as $t)
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "cannot sample from empty inclusive range");
                let span = (high as u64) - (low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low + (sample_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Debiased sampling of a uniform value in `[0, span)` (Lemire's method
/// simplified to rejection on the low bits).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Ranges that can be passed to [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the generator's bit stream.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// splitmix64, like the real `rand` crate's small-rng family.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut ns2 = s2 ^ s0;
            let ns3 = s3 ^ s1;
            let ns1 = s1 ^ ns2;
            let ns0 = s0 ^ ns3;
            ns2 ^= t;
            self.state = [ns0, ns1, ns2, ns3.rotate_left(45)];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..10_000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            seen_low |= v == 3;
            seen_high |= v == 16;
            let w = rng.random_range(0usize..=4);
            assert!(w <= 4);
        }
        assert!(seen_low && seen_high, "range endpoints should be reachable");
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            assert!(!rng.random_bool(0.0));
            // random::<f64>() samples [0, 1), so p = 1.0 always hits.
            assert!(rng.random_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 should be near half");
    }
}
