//! Offline vendored subset of the `serde` API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the subset of serde the SISA reproduction uses:
//! `#[derive(Serialize, Deserialize)]` on plain structs with named fields,
//! routed through a small self-describing [`Content`] value tree instead of
//! the real crate's serializer/deserializer traits. `serde_json` (also
//! vendored) renders and parses that tree as JSON.
//!
//! Supported shapes are intentionally narrow: named-field structs, the
//! primitive scalar types the cost-model configs use, strings, options,
//! vectors and maps of those. Anything fancier fails to compile, which is the
//! correct behaviour for a shim — it surfaces the gap at build time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing serialized value (the shim's data model, mirroring what
/// JSON can express).
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// The absence of a value.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// A key→value map with string keys, in field/insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up `key` in a [`Content::Map`].
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when reconstructing a value from a [`Content`] tree.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Content`] tree.
    fn to_content(&self) -> Content;
}

/// Types that can be reconstructed from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value from `content`.
    ///
    /// # Errors
    /// Returns [`Error`] when the tree's shape does not match `Self`.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(u64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom(format!("{v} out of range"))),
                    Content::I64(v) if *v >= 0 => <$t>::try_from(*v as u64)
                        .map_err(|_| Error::custom(format!("{v} out of range"))),
                    other => Err(Error::custom(format!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_content(content: &Content) -> Result<Self, Error> {
        u64::from_content(content).and_then(|v| {
            usize::try_from(v).map_err(|_| Error::custom(format!("{v} out of range")))
        })
    }
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(i64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom(format!("{v} out of range"))),
                    Content::U64(v) => i64::try_from(*v)
                        .ok()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| Error::custom(format!("{v} out of range"))),
                    other => Err(Error::custom(format!(
                        "expected signed integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(Error::custom(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(v) => Ok(*v),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(v) => Ok(v.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_content(&self) -> Content {
        Content::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::custom(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| V::from_content(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(Error::custom(format!("expected map, found {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
            }
            other => Err(Error::custom(format!(
                "expected a 2-element sequence, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u32::from_content(&42u32.to_content()), Ok(42));
        assert_eq!(f64::from_content(&1.5f64.to_content()), Ok(1.5));
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Vec::<u32>::from_content(&vec![1u32, 2, 3].to_content()),
            Ok(vec![1, 2, 3])
        );
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(u32::from_content(&Content::Str("x".into())).is_err());
        assert!(bool::from_content(&Content::U64(1)).is_err());
        assert!(u8::from_content(&Content::U64(300)).is_err());
    }
}
