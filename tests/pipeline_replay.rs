//! Trace replay through the pipelined dispatcher.
//!
//! The checked-in `tests/fixtures/triangle_count_trace.json` capture is
//! replayed into runtimes with different issue-queue configurations:
//!
//! * at **depth 1** (the default) the scoreboarded queue degenerates to the
//!   serial cost model, so the replayed statistics are the recorded run's
//!   serial statistics — makespan equal to the serial work total, zero
//!   dependence stall, and deterministic across replays;
//! * at **depth > 1** the same instruction stream overlaps across virtual
//!   vault lanes: every work counter (cycles per unit, energy, per-opcode
//!   counts) is conserved exactly, while the makespan drops below the serial
//!   total because triangle counting's counting intersections are mutually
//!   independent.
//!
//! This pins the property that lets the issue-queue work ride on the existing
//! fixture: pipelining changes *when* instructions execute, never *what* they
//! cost or compute.

mod common;

use common::{read_fixture, TraceFixture};
use sisa::core::{ExecStats, Interpreter, SetEngine, SisaConfig, SisaRuntime};

fn load_trace() -> TraceFixture {
    read_fixture()
}

/// Replays the fixture into a fresh runtime with the given configuration.
fn replay_with(config: SisaConfig, fixture: &TraceFixture) -> SisaRuntime {
    let mut rt = SisaRuntime::new(config);
    let report = Interpreter::replay(&fixture.trace, &mut rt);
    assert!(report.complete, "the fixture is a complete capture");
    rt
}

/// Strips the timing view (makespan, dependence stalls, rename/bypass
/// telemetry) off a statistics record, leaving only the serial work counters.
fn work_only(stats: &ExecStats) -> ExecStats {
    let mut work = stats.clone();
    work.makespan_cycles = 0;
    work.dep_stall_cycles = 0;
    work.dep_stall_by_opcode.clear();
    work.false_dep_stalls_removed = 0;
    work.false_dep_removed_by_opcode.clear();
    work.bypassed_instructions = 0;
    work.bypass_by_opcode.clear();
    work
}

#[test]
fn depth_one_replay_reproduces_the_recorded_serial_stats() {
    let fixture = load_trace();
    let serial = replay_with(SisaConfig::default(), &fixture);
    // The replayed run is the recorded run: instruction-for-instruction.
    assert_eq!(
        serial.stats().total_instructions(),
        fixture.expected_instructions
    );
    assert_eq!(serial.live_sets() as u64, fixture.expected_live_sets);
    // Depth 1 is the serial cost model: the overlapped timeline collapses
    // onto the serial work total and no hazard is ever exposed.
    assert_eq!(
        serial.stats().makespan_cycles,
        serial.stats().total_cycles()
    );
    assert_eq!(serial.stats().dep_stall_cycles, 0);
    assert!(serial.stats().dep_stall_by_opcode.is_empty());
    // And it is deterministic, cycle for cycle including energy.
    let again = replay_with(SisaConfig::default(), &fixture);
    assert_eq!(again.stats(), serial.stats());
}

#[test]
fn pipelined_replay_conserves_work_and_shrinks_the_makespan() {
    let fixture = load_trace();
    let serial = replay_with(SisaConfig::default(), &fixture);
    for (depth, lanes) in [(2usize, 2usize), (8, 4), (16, 16)] {
        let deep = replay_with(SisaConfig::with_pipeline(depth, lanes), &fixture);
        // The pipelined dispatcher executes the identical instruction stream
        // at the identical work cost — only the schedule changes.
        assert_eq!(
            work_only(deep.stats()),
            work_only(serial.stats()),
            "work must be conserved at depth {depth} x {lanes} lanes"
        );
        assert_eq!(deep.live_sets(), serial.live_sets());
        assert!(
            deep.stats().makespan_cycles <= serial.stats().makespan_cycles,
            "overlap can only shorten the schedule (depth {depth} x {lanes})"
        );
    }
    // With real lane parallelism the triangle count's independent counting
    // intersections genuinely overlap: the makespan drops strictly below the
    // serial work total and the exposed hazards are attributed.
    let overlapped = replay_with(SisaConfig::with_pipeline(8, 4), &fixture);
    assert!(
        overlapped.stats().makespan_cycles < serial.stats().total_cycles(),
        "expected strict overlap: {} !< {}",
        overlapped.stats().makespan_cycles,
        serial.stats().total_cycles()
    );
    assert!(overlapped.stats().overlap_speedup() > 1.0);
}

#[test]
fn renamed_replay_conserves_work_and_beats_the_in_order_schedule() {
    // The same capture re-scheduled through the renamed out-of-order path:
    // replay routes every instruction — creates, counting intersections,
    // deletes over recycled IDs — through the RenameMap, so the fixture pins
    // the renamed scheduler against regressions exactly like the in-order
    // one.
    let fixture = load_trace();
    let serial = replay_with(SisaConfig::default(), &fixture);
    let inorder8 = replay_with(SisaConfig::with_pipeline(8, 4), &fixture);
    let renamed = replay_with(SisaConfig::with_rename_ooo(8, 4, 8, 256), &fixture);

    // The renamed dispatcher executes the identical instruction stream at
    // the identical work cost — only the schedule changes.
    assert_eq!(work_only(renamed.stats()), work_only(serial.stats()));
    assert_eq!(renamed.live_sets(), serial.live_sets());
    assert_eq!(
        renamed.stats().energy_nj.to_bits(),
        serial.stats().energy_nj.to_bits(),
        "energy must be bit-identical"
    );
    // Breaking false dependences can only shorten the in-order depth-8
    // schedule, and never beats the serial work total.
    assert!(renamed.stats().makespan_cycles <= inorder8.stats().makespan_cycles);
    assert!(renamed.stats().makespan_cycles <= serial.stats().total_cycles());
    // The stall decomposition reconstructs the in-order depth-8 report
    // exactly, per opcode.
    assert_eq!(
        renamed.stats().dep_stall_cycles + renamed.stats().false_dep_stalls_removed,
        inorder8.stats().dep_stall_cycles
    );
    let mut recombined = renamed.stats().dep_stall_by_opcode.clone();
    for (&op, &n) in &renamed.stats().false_dep_removed_by_opcode {
        *recombined.entry(op).or_insert(0) += n;
    }
    assert_eq!(recombined, inorder8.stats().dep_stall_by_opcode);
    // And the renamed replay is deterministic, cycle for cycle.
    let again = replay_with(SisaConfig::with_rename_ooo(8, 4, 8, 256), &fixture);
    assert_eq!(again.stats(), renamed.stats());
}
