//! Smoke test for the `run_all` pipeline shape: every (problem, scheme) cell
//! the figure binaries measure must run end-to-end on a tiny generated graph.
//! This gives CI coverage of the bench path without invoking criterion or the
//! release-built figure binaries.

use sisa::algorithms::SearchLimits;
use sisa::graph::generators;
use sisa_bench::{
    capture_instruction_mix, multi_cube_sweep, pipeline_overlap_sweep, rename_ooo_sweep,
    run_auxiliary_formulations, run_cell, InstructionMix, MultiCubeCell, PipelineOverlapCell,
    PlatformSummary, Problem, RenameOooCell, Scheme, Workload,
};

#[test]
fn every_figure6_cell_runs_on_a_tiny_graph() {
    let g = generators::erdos_renyi(80, 0.08, 3);
    let w = Workload::new(g, 4, SearchLimits::patterns(2_000));
    for problem in Problem::figure6_panels() {
        let mut results = Vec::new();
        for scheme in Scheme::ALL {
            let m = run_cell(problem, scheme, &w);
            assert!(
                m.cycles > 0,
                "{}/{} took zero cycles",
                problem.label(),
                scheme.label()
            );
            assert!(
                m.report.makespan_cycles == m.cycles,
                "{}/{} report disagrees with cycles",
                problem.label(),
                scheme.label()
            );
            results.push((scheme, m.result, m.truncated));
        }
        // All schemes compute the same answer unless the pattern budget cut
        // one of them short.
        if results.iter().all(|&(_, _, truncated)| !truncated) {
            let reference = results[0].1;
            for &(scheme, result, _) in &results[1..] {
                assert_eq!(
                    result,
                    reference,
                    "{}/{} disagrees with {}",
                    problem.label(),
                    scheme.label(),
                    results[0].0.label()
                );
            }
        }
    }
}

#[test]
fn emit_mirrors_results_to_the_results_dir() {
    // run_all's figure binaries publish through sisa_bench::emit, which
    // resolves SISA_RESULTS_DIR and delegates to emit_to; drive the write
    // path against a scratch directory (no process-global env mutation —
    // sibling tests run concurrently).
    let dir = std::env::temp_dir().join(format!("sisa-smoke-{}", std::process::id()));
    sisa_bench::emit_to(&dir, "smoke", "graph result\ntiny 42\n");
    let written = std::fs::read_to_string(dir.join("smoke.txt")).expect("emit writes a mirror");
    assert!(written.contains("tiny 42"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn platform_summary_round_trips_through_json() {
    // run_all records its platform provenance as results/platform.json; the
    // summary must survive a serialize → parse round trip.
    let summary = PlatformSummary::default();
    let json = summary.to_json();
    assert!(json.contains("\"cpu\""), "json should name the cpu section");
    let back: PlatformSummary = serde_json::from_str(&json).expect("platform.json parses back");
    assert_eq!(back, summary);
}

#[test]
fn instruction_mix_comes_from_a_real_traced_program() {
    // run_all publishes results/instruction_mix.json from the SisaProgram a
    // traced run captures; the mix must be non-empty, name real SISA
    // mnemonics, and survive a JSON round trip.
    let g = generators::erdos_renyi(100, 0.08, 7);
    let mix = capture_instruction_mix("tiny", &g);
    assert!(mix.trace_complete, "the bounded trace must not overflow");
    assert!(mix.total_instructions > 0);
    assert_eq!(
        mix.mix.values().sum::<u64>(),
        mix.total_instructions,
        "per-opcode counts must add up to the program length"
    );
    assert!(
        mix.mix.contains_key("sisa.new"),
        "graph loading creates sets"
    );
    assert!(
        mix.mix.contains_key("sisa.intc"),
        "triangle counting issues counting intersections"
    );
    // The mix run executes on a pipelined issue queue, so the stall report
    // alongside the dynamic counts is non-trivial and consistent.
    assert!(mix.issue_depth > 1, "the mix run must be pipelined");
    assert!(mix.issue_lanes >= 1);
    assert!(
        mix.makespan_cycles > 0 && mix.makespan_cycles <= mix.serial_cycles,
        "overlap can only shorten the schedule: {} vs {}",
        mix.makespan_cycles,
        mix.serial_cycles
    );
    // Per-opcode stalls are the instruction-attributed subset of the total:
    // host-side events (e.g. `members` read-outs) can stall too but carry no
    // opcode.
    let attributed: u64 = mix.dep_stalls.values().sum();
    assert!(
        attributed > 0 && attributed <= mix.dep_stall_cycles,
        "attributed stalls ({attributed}) must be a non-trivial subset of the total ({})",
        mix.dep_stall_cycles
    );
    for mnemonic in mix.dep_stalls.keys() {
        assert!(
            mix.mix.contains_key(mnemonic),
            "stalling mnemonic {mnemonic} must appear in the dynamic mix"
        );
    }
    // The notes record what acting on the stall report measured: the kcc-4
    // overlap recovered by renaming + the out-of-order window on this graph.
    assert!(
        mix.notes.contains("kcc-4") && mix.notes.contains("renaming"),
        "notes must quantify the rename/OoO gain: {}",
        mix.notes
    );
    let json = mix.to_json();
    let back: InstructionMix = serde_json::from_str(&json).expect("mix parses back");
    assert_eq!(back, mix);
}

#[test]
fn pipeline_overlap_sweep_runs_and_its_json_parses() {
    // run_all's pipeline_overlap binary publishes results/pipeline_overlap.json
    // from this sweep; drive it on a tiny graph and check the figure's schema
    // claims hold.
    let g = generators::erdos_renyi(70, 0.1, 9);
    let depths = [1usize, 8, 32];
    let lane_counts = [1usize, 2, 4, 8];
    let cells = pipeline_overlap_sweep(
        "tiny",
        &g,
        &depths,
        &lane_counts,
        &SearchLimits::patterns(5_000),
    );
    let workloads: std::collections::BTreeSet<&str> =
        cells.iter().map(|c| c.workload.as_str()).collect();
    assert!(workloads.len() >= 2, "tc and kcc-4 at minimum");
    assert_eq!(
        cells.len(),
        workloads.len() * depths.len() * lane_counts.len()
    );

    for workload in &workloads {
        let of_workload: Vec<&PipelineOverlapCell> =
            cells.iter().filter(|c| &c.workload == workload).collect();
        // Scheduling never changes answers, and the queue prices time, not
        // work: results and work totals agree across every cell.
        assert!(
            of_workload.windows(2).all(|w| w[0].result == w[1].result),
            "{workload}: pipelined runs disagree on the result"
        );
        assert!(
            of_workload
                .windows(2)
                .all(|w| w[0].work_cycles == w[1].work_cycles),
            "{workload}: work must be conserved across depth x lanes"
        );
        for cell in &of_workload {
            // Depth 1 is the serial cost model.
            if cell.depth == 1 {
                assert_eq!(cell.makespan_cycles, cell.work_cycles, "{workload}");
                assert_eq!(cell.dep_stall_cycles, 0, "{workload}");
                assert!((cell.overlap_speedup - 1.0).abs() < 1e-12);
            }
            // The makespan never beats the critical path to zero nor exceeds
            // the serial total.
            assert!(cell.makespan_cycles > 0 && cell.makespan_cycles <= cell.work_cycles);
            assert!(cell.overlap_speedup >= 1.0);
        }
        // At a fixed depth the makespan is monotone non-increasing in the
        // lane count (more lanes never slow the schedule down).
        for &depth in &depths {
            let mut last = u64::MAX;
            for &lanes in &lane_counts {
                let cell = of_workload
                    .iter()
                    .find(|c| c.depth == depth && c.lanes == lanes)
                    .expect("cell present");
                assert!(
                    cell.makespan_cycles <= last,
                    "{workload}: makespan grew from {last} to {} at depth {depth} x {lanes} lanes",
                    cell.makespan_cycles
                );
                last = cell.makespan_cycles;
            }
        }
    }
    // The acceptance claim: triangle counting overlaps strictly at depth >= 8
    // with >= 4 lanes.
    assert!(
        cells.iter().any(|c| c.workload == "tc"
            && c.depth >= 8
            && c.lanes >= 4
            && c.makespan_cycles < c.work_cycles),
        "triangle counting must overlap at depth >= 8 with >= 4 lanes"
    );

    // The JSON the binary writes parses back into the same cells.
    let json = serde_json::to_string_pretty(&cells).expect("cells serialize");
    let back: Vec<PipelineOverlapCell> =
        serde_json::from_str(&json).expect("pipeline_overlap.json parses");
    assert_eq!(back, cells);
}

#[test]
fn rename_ooo_sweep_runs_and_its_json_parses() {
    // run_all's rename_ooo binary publishes results/rename_ooo.json from this
    // sweep; drive it on a tiny graph and check the figure's schema claims.
    let g = generators::erdos_renyi(70, 0.1, 9);
    let windows = [1usize, 8, 32];
    let tag_counts = [0usize, 16, 256];
    let lanes = 8usize;
    let limits = SearchLimits::patterns(5_000);
    let cells = rename_ooo_sweep("tiny", &g, &windows, &tag_counts, lanes, &limits);
    let workloads: std::collections::BTreeSet<&str> =
        cells.iter().map(|c| c.workload.as_str()).collect();
    assert!(workloads.len() >= 2, "tc and kcc-4 at minimum");
    assert_eq!(
        cells.len(),
        workloads.len() * windows.len() * tag_counts.len()
    );

    for workload in &workloads {
        let of_workload: Vec<&RenameOooCell> =
            cells.iter().filter(|c| &c.workload == workload).collect();
        // Scheduling never changes answers, and the pipeline prices time,
        // not work.
        assert!(
            of_workload.windows(2).all(|w| w[0].result == w[1].result),
            "{workload}: renamed runs disagree on the result"
        );
        assert!(
            of_workload
                .windows(2)
                .all(|w| w[0].work_cycles == w[1].work_cycles),
            "{workload}: work must be conserved across window x tags"
        );
        for cell in &of_workload {
            assert!(cell.makespan_cycles > 0 && cell.makespan_cycles <= cell.work_cycles);
            assert!(cell.overlap_speedup >= 1.0);
            if cell.window == 1 {
                // A 1-entry window is the serial cost model, renamed or not.
                assert_eq!(cell.makespan_cycles, cell.work_cycles, "{workload}");
            }
            if cell.tags == 0 {
                // Rename-off rows never report removed false dependences.
                assert_eq!(cell.false_dep_stalls_removed, 0, "{workload}");
                assert_eq!(cell.bypassed_instructions, 0, "{workload}");
            } else {
                // The stall decomposition reconstructs the rename-off row's
                // dependence-stall budget exactly.
                let reference = of_workload
                    .iter()
                    .find(|c| c.tags == 0 && c.window == cell.window)
                    .expect("rename-off reference row");
                assert_eq!(
                    cell.dep_stall_cycles + cell.false_dep_stalls_removed,
                    reference.dep_stall_cycles,
                    "{workload}: decomposition at window {}",
                    cell.window
                );
                assert!(
                    cell.makespan_cycles <= reference.makespan_cycles,
                    "{workload}: renaming must never slow window {} down",
                    cell.window
                );
            }
        }
        // Makespan is monotone non-increasing in the window at fixed tags...
        for &tags in &tag_counts {
            let mut last = u64::MAX;
            for &window in &windows {
                let cell = of_workload
                    .iter()
                    .find(|c| c.window == window && c.tags == tags)
                    .expect("cell present");
                assert!(
                    cell.makespan_cycles <= last,
                    "{workload}: makespan grew from {last} to {} at window \
                     {window} x {tags} tags",
                    cell.makespan_cycles
                );
                last = cell.makespan_cycles;
            }
        }
        // ...and in the tag-pool size at a fixed window (0 = off last, so
        // sweep the renamed pools only).
        for &window in &windows {
            let mut last = u64::MAX;
            for &tags in tag_counts.iter().filter(|&&t| t > 0) {
                let cell = of_workload
                    .iter()
                    .find(|c| c.window == window && c.tags == tags)
                    .expect("cell present");
                assert!(
                    cell.makespan_cycles <= last,
                    "{workload}: makespan grew from {last} to {} at window \
                     {window} x {tags} tags",
                    cell.makespan_cycles
                );
                last = cell.makespan_cycles;
            }
        }
    }

    // The rename-off rows are the in-order pipeline: they must reproduce the
    // pipeline_overlap figure's cells of the same depth x lanes geometry,
    // cycle for cycle.
    let overlap_cells = pipeline_overlap_sweep("tiny", &g, &windows, &[lanes], &limits);
    for cell in cells.iter().filter(|c| c.tags == 0) {
        let twin = overlap_cells
            .iter()
            .find(|o| o.workload == cell.workload && o.depth == cell.window && o.lanes == lanes)
            .expect("matching pipeline_overlap cell");
        assert_eq!(cell.result, twin.result);
        assert_eq!(cell.work_cycles, twin.work_cycles);
        assert_eq!(
            cell.makespan_cycles, twin.makespan_cycles,
            "{}: rename-off row must equal the pipeline_overlap depth-{} row",
            cell.workload, cell.window
        );
        assert_eq!(cell.dep_stall_cycles, twin.dep_stall_cycles);
    }

    // The JSON the binary writes parses back into the same cells.
    let json = serde_json::to_string_pretty(&cells).expect("cells serialize");
    let back: Vec<RenameOooCell> = serde_json::from_str(&json).expect("rename_ooo.json parses");
    assert_eq!(back, cells);
}

#[test]
fn multi_cube_sweep_runs_and_its_json_parses() {
    // run_all's multi_cube binary publishes results/multi_cube.json from this
    // sweep; drive it on a tiny graph and check the figure's claims hold.
    let g = generators::erdos_renyi(70, 0.1, 9);
    let cells = multi_cube_sweep("tiny", &g, &[1, 2, 4], &SearchLimits::patterns(5_000));
    // The workload list comes from the sweep output itself, so cells of a
    // newly added workload cannot be skipped silently by a stale local list.
    let workloads: std::collections::BTreeSet<&str> =
        cells.iter().map(|c| c.workload.as_str()).collect();
    let strategies = sisa::core::PartitionStrategy::ALL.len();
    assert!(workloads.len() >= 2, "tc and kcc-4 at minimum");
    assert_eq!(cells.len(), workloads.len() * strategies * 3);

    for workload in workloads {
        let of_workload: Vec<&MultiCubeCell> =
            cells.iter().filter(|c| c.workload == workload).collect();
        // Every cell of a workload mines the same answer.
        assert!(
            of_workload.windows(2).all(|w| w[0].result == w[1].result),
            "{workload}: sharded runs disagree"
        );
        // One shard: no cross-shard traffic, perfect balance.
        for cell in of_workload.iter().filter(|c| c.shards == 1) {
            assert_eq!(cell.cross_shard_ops, 0, "{workload}/{}", cell.strategy);
            assert_eq!(cell.cross_shard_bytes, 0);
            assert_eq!(cell.link_cycles, 0);
            assert!((cell.imbalance - 1.0).abs() < 1e-9);
        }
        // Multi-shard runs move operands over the links.
        assert!(of_workload
            .iter()
            .filter(|c| c.shards > 1)
            .all(|c| c.cross_shard_ops > 0 && c.link_cycles > 0));
        // The figure's point: traffic and imbalance vary by strategy.
        let traffic_at_4: std::collections::BTreeSet<u64> = of_workload
            .iter()
            .filter(|c| c.shards == 4)
            .map(|c| c.cross_shard_bytes)
            .collect();
        assert!(
            traffic_at_4.len() > 1,
            "{workload}: all strategies induced identical cross-shard traffic"
        );
    }

    // The JSON the binary writes parses back into the same cells.
    let json = serde_json::to_string_pretty(&cells).expect("cells serialize");
    let back: Vec<MultiCubeCell> = serde_json::from_str(&json).expect("multi_cube.json parses");
    assert_eq!(back, cells);
}

#[test]
fn auxiliary_formulations_cover_the_run_all_tail() {
    let g = generators::erdos_renyi(120, 0.05, 5);
    let (rounds, reached) = run_auxiliary_formulations(&g);
    assert!(
        rounds > 0,
        "approximate degeneracy must run at least a round"
    );
    assert!(
        reached > 0 && reached <= g.num_vertices(),
        "BFS reach out of range: {reached}"
    );
}
