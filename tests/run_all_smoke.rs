//! Smoke test for the `run_all` pipeline shape: every (problem, scheme) cell
//! the figure binaries measure must run end-to-end on a tiny generated graph.
//! This gives CI coverage of the bench path without invoking criterion or the
//! release-built figure binaries.

use sisa::algorithms::SearchLimits;
use sisa::graph::generators;
use sisa_bench::{
    capture_instruction_mix, run_auxiliary_formulations, run_cell, InstructionMix, PlatformSummary,
    Problem, Scheme, Workload,
};

#[test]
fn every_figure6_cell_runs_on_a_tiny_graph() {
    let g = generators::erdos_renyi(80, 0.08, 3);
    let w = Workload::new(g, 4, SearchLimits::patterns(2_000));
    for problem in Problem::figure6_panels() {
        let mut results = Vec::new();
        for scheme in Scheme::ALL {
            let m = run_cell(problem, scheme, &w);
            assert!(
                m.cycles > 0,
                "{}/{} took zero cycles",
                problem.label(),
                scheme.label()
            );
            assert!(
                m.report.makespan_cycles == m.cycles,
                "{}/{} report disagrees with cycles",
                problem.label(),
                scheme.label()
            );
            results.push((scheme, m.result, m.truncated));
        }
        // All schemes compute the same answer unless the pattern budget cut
        // one of them short.
        if results.iter().all(|&(_, _, truncated)| !truncated) {
            let reference = results[0].1;
            for &(scheme, result, _) in &results[1..] {
                assert_eq!(
                    result,
                    reference,
                    "{}/{} disagrees with {}",
                    problem.label(),
                    scheme.label(),
                    results[0].0.label()
                );
            }
        }
    }
}

#[test]
fn emit_mirrors_results_to_the_results_dir() {
    // run_all's figure binaries publish through sisa_bench::emit, which
    // resolves SISA_RESULTS_DIR and delegates to emit_to; drive the write
    // path against a scratch directory (no process-global env mutation —
    // sibling tests run concurrently).
    let dir = std::env::temp_dir().join(format!("sisa-smoke-{}", std::process::id()));
    sisa_bench::emit_to(&dir, "smoke", "graph result\ntiny 42\n");
    let written = std::fs::read_to_string(dir.join("smoke.txt")).expect("emit writes a mirror");
    assert!(written.contains("tiny 42"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn platform_summary_round_trips_through_json() {
    // run_all records its platform provenance as results/platform.json; the
    // summary must survive a serialize → parse round trip.
    let summary = PlatformSummary::default();
    let json = summary.to_json();
    assert!(json.contains("\"cpu\""), "json should name the cpu section");
    let back: PlatformSummary = serde_json::from_str(&json).expect("platform.json parses back");
    assert_eq!(back, summary);
}

#[test]
fn instruction_mix_comes_from_a_real_traced_program() {
    // run_all publishes results/instruction_mix.json from the SisaProgram a
    // traced run captures; the mix must be non-empty, name real SISA
    // mnemonics, and survive a JSON round trip.
    let g = generators::erdos_renyi(100, 0.08, 7);
    let mix = capture_instruction_mix("tiny", &g);
    assert!(mix.trace_complete, "the bounded trace must not overflow");
    assert!(mix.total_instructions > 0);
    assert_eq!(
        mix.mix.values().sum::<u64>(),
        mix.total_instructions,
        "per-opcode counts must add up to the program length"
    );
    assert!(
        mix.mix.contains_key("sisa.new"),
        "graph loading creates sets"
    );
    assert!(
        mix.mix.contains_key("sisa.intc"),
        "triangle counting issues counting intersections"
    );
    let json = mix.to_json();
    let back: InstructionMix = serde_json::from_str(&json).expect("mix parses back");
    assert_eq!(back, mix);
}

#[test]
fn auxiliary_formulations_cover_the_run_all_tail() {
    let g = generators::erdos_renyi(120, 0.05, 5);
    let (rounds, reached) = run_auxiliary_formulations(&g);
    assert!(
        rounds > 0,
        "approximate degeneracy must run at least a round"
    );
    assert!(
        reached > 0 && reached <= g.num_vertices(),
        "BFS reach out of range: {reached}"
    );
}
