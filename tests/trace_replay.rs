//! Cross-crate acceptance test for the trace/replay pipeline: a traced
//! set-centric triangle-count run, captured as a genuine `SisaProgram`, must
//! replay through the `Interpreter` and reproduce the original run's
//! `ExecStats` cycle-for-cycle — and re-price on the CPU backend.

use sisa::algorithms::setcentric::{orient_by_degeneracy, triangle_count};
use sisa::algorithms::SearchLimits;
use sisa::core::{HostEngine, Interpreter, SetEngine, SetGraphConfig, SisaConfig, SisaRuntime};
use sisa::graph::generators;

#[test]
fn traced_triangle_count_replays_with_identical_exec_stats() {
    let g = generators::erdos_renyi(150, 0.06, 21);

    // Original run: trace from the runtime's first instruction, including the
    // graph load and the load/measure statistics reset.
    let mut original = SisaRuntime::new(SisaConfig::default());
    original.enable_default_trace();
    let (oriented, _) = orient_by_degeneracy(&mut original, &g, &SetGraphConfig::default());
    original.reset_stats();
    let run = triangle_count(&mut original, &oriented, &SearchLimits::unlimited());
    let trace = original.take_trace().expect("trace attached");
    assert!(
        trace.is_complete(),
        "the default capacity must fit this run"
    );

    // The capture is a genuine SISA program with a triangle-count shape.
    let program = trace.program();
    assert!(!program.is_empty());
    let mix = program.mnemonic_histogram();
    assert!(mix["sisa.intc"] as u64 >= run.result.min(1));
    assert!(mix.contains_key("sisa.new"));

    // Replay into a fresh runtime with the same configuration: the statistics
    // must match exactly, cycle for cycle, instruction for instruction.
    let mut replayed = SisaRuntime::new(SisaConfig::default());
    let report = Interpreter::replay(&trace, &mut replayed);
    assert!(report.complete);
    assert_eq!(report.instructions, program.len());
    assert_eq!(replayed.stats(), original.stats());

    // The same trace replays against the CPU backend, which re-prices it:
    // same instruction stream, different cost model.
    let mut host = HostEngine::with_defaults();
    let host_report = Interpreter::replay(&trace, &mut host);
    assert!(host_report.complete);
    assert_eq!(host_report.events, report.events);
    assert!(host.stats().host_cycles > 0);
    assert_ne!(
        host.stats().total_cycles(),
        original.stats().total_cycles(),
        "the CPU backend prices the same program differently"
    );
}
