//! Integration test: every SISA instruction issued by a real mining run can be
//! encoded into the RISC-V custom opcode space and decoded back (Figure 5),
//! and the dynamic instruction mix matches what the algorithm should issue.

use sisa::isa::{Register, SisaInstruction, SisaOpcode, SisaProgram};

#[test]
fn full_opcode_space_round_trips_and_stays_custom() {
    let mut program = SisaProgram::new();
    for (i, op) in SisaOpcode::ALL.into_iter().enumerate() {
        program.emit(
            op,
            (i % 32) as u8,
            ((i + 1) % 32) as u8,
            ((i + 2) % 32) as u8,
        );
    }
    let words = program.encode();
    assert_eq!(words.len(), SisaOpcode::ALL.len());
    for &w in &words {
        assert_eq!(
            w & 0x7F,
            sisa::isa::CUSTOM_OPCODE,
            "must use the custom opcode"
        );
    }
    let decoded = SisaProgram::decode(&words).unwrap();
    assert_eq!(decoded, program);
    let asm = program.to_assembly();
    assert_eq!(asm.lines().count(), SisaOpcode::ALL.len());
}

#[test]
fn triangle_counting_instruction_mix_is_intersection_dominated() {
    use sisa::algorithms::setcentric::triangle_count;
    use sisa::algorithms::SearchLimits;
    use sisa::core::{SetEngine, SetGraph, SetGraphConfig, SisaConfig, SisaRuntime};
    use sisa::graph::{generators, orientation::degeneracy_order};

    let g = generators::erdos_renyi(150, 0.1, 1);
    let oriented_csr = degeneracy_order(&g).orient(&g);
    let mut rt = SisaRuntime::new(SisaConfig::default());
    let sg = SetGraph::load(&mut rt, &oriented_csr, &SetGraphConfig::default());
    rt.reset_stats();
    let _ = triangle_count(&mut rt, &sg, &SearchLimits::unlimited());
    let stats = rt.stats();
    let intersect_counts = stats
        .instructions
        .get(&SisaOpcode::IntersectCountAuto)
        .copied()
        .unwrap_or(0);
    // One |N+(v) ∩ N+(w)| instruction per oriented edge.
    assert_eq!(intersect_counts as usize, g.num_edges());
    // The counting variant never materialises results, so no set-creating
    // intersection instructions should appear.
    assert_eq!(stats.instructions.get(&SisaOpcode::IntersectAuto), None);
    // Each instruction can be encoded as a real machine word.
    let instr = SisaInstruction::new(
        SisaOpcode::IntersectCountAuto,
        Register::new(3),
        Register::new(1),
        Register::new(2),
    );
    assert_eq!(SisaInstruction::decode(instr.encode()).unwrap(), instr);
}
