//! Cross-PR regression fixture for the trace pipeline: a captured set-centric
//! triangle-count run is checked in as `tests/fixtures/triangle_count_trace.json`
//! and replayed through the `Interpreter` on every run.
//!
//! The fixture pins the *functional* shape of the issue stage — the exact
//! instruction words materialised (register binding included) and the exact
//! semantic payload stream — without pinning any cost-model cycle counts, so
//! cost refinements in later PRs do not invalidate it but issue-stage
//! regressions do. If an intentional issue-stage change lands, regenerate
//! with:
//!
//! ```sh
//! UPDATE_FIXTURES=1 cargo test --test trace_fixture
//! ```

mod common;

use common::{fixture_path, read_fixture, TraceFixture};
use sisa::algorithms::setcentric::{orient_by_degeneracy, triangle_count};
use sisa::algorithms::SearchLimits;
use sisa::core::{
    FunctionalEngine, Interpreter, SetEngine, SetGraphConfig, SisaConfig, SisaRuntime,
};
use sisa::graph::generators;

/// The deterministic workload the fixture captures (seeded generator, default
/// configuration, traced from the runtime's first instruction).
fn capture() -> TraceFixture {
    let g = generators::erdos_renyi(48, 0.12, 11);
    let mut rt = SisaRuntime::new(SisaConfig::default());
    rt.enable_default_trace();
    let (oriented, _) = orient_by_degeneracy(&mut rt, &g, &SetGraphConfig::default());
    rt.reset_stats();
    let run = triangle_count(&mut rt, &oriented, &SearchLimits::unlimited());
    let trace = rt.take_trace().expect("trace attached");
    assert!(trace.is_complete(), "fixture workload must fit the sink");
    TraceFixture {
        description: "set-centric triangle count on a degeneracy-oriented Erdős–Rényi graph"
            .to_string(),
        graph: "erdos_renyi(48, 0.12, seed 11)".to_string(),
        expected_triangles: run.result,
        expected_instructions: rt.stats().total_instructions(),
        expected_live_sets: rt.live_sets() as u64,
        trace,
    }
}

fn load_fixture() -> TraceFixture {
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        let path = fixture_path();
        let fresh = capture();
        let json = serde_json::to_string_pretty(&fresh).expect("fixture serializes");
        std::fs::create_dir_all(path.parent().unwrap()).expect("fixtures dir");
        std::fs::write(&path, json).expect("fixture written");
    }
    read_fixture()
}

#[test]
fn fixture_matches_a_fresh_capture() {
    // The issue stage is deterministic: re-tracing the same workload must
    // reproduce the checked-in instruction words and payload stream exactly.
    // A mismatch means the issue stage changed behaviour — if intentional,
    // regenerate the fixture (see module docs).
    let stored = load_fixture();
    let fresh = capture();
    assert_eq!(stored.expected_triangles, fresh.expected_triangles);
    assert_eq!(stored.expected_instructions, fresh.expected_instructions);
    assert_eq!(stored.expected_live_sets, fresh.expected_live_sets);
    assert_eq!(stored.trace.events(), fresh.trace.events());
}

#[test]
fn fixture_replays_through_the_interpreter() {
    let fixture = load_fixture();

    // Replay into a fresh SISA runtime. The trace contains the graph load,
    // a statistics reset and the measured run, so the replayed engine's
    // post-reset instruction count must land exactly on the capture-time
    // record, while the replay report covers the whole event stream.
    let mut replayed = SisaRuntime::new(SisaConfig::default());
    let report = Interpreter::replay(&fixture.trace, &mut replayed);
    assert!(report.complete);
    assert_eq!(report.instructions, fixture.trace.program().len());
    assert_eq!(
        replayed.stats().total_instructions(),
        fixture.expected_instructions
    );
    assert_eq!(replayed.live_sets() as u64, fixture.expected_live_sets);

    // Replays are deterministic: a second replay prices identically,
    // cycle for cycle.
    let mut again = SisaRuntime::new(SisaConfig::default());
    Interpreter::replay(&fixture.trace, &mut again);
    assert_eq!(again.stats(), replayed.stats());

    // The cost-free functional backend executes the same stream and agrees on
    // the surviving sets.
    let mut functional = FunctionalEngine::new();
    let functional_report = Interpreter::replay(&fixture.trace, &mut functional);
    assert_eq!(functional_report.events, report.events);
    assert_eq!(functional.live_sets(), replayed.live_sets());
    assert_eq!(functional.stats().total_cycles(), 0);

    // The captured program is a genuine triangle-count instruction stream.
    let mix = fixture.trace.program().mnemonic_histogram();
    assert!(mix["sisa.new"] as u64 >= 48, "one create per neighbourhood");
    assert!(
        mix["sisa.intc"] > 0,
        "triangle counting issues counting intersections"
    );
}

#[test]
fn fixture_records_the_true_triangle_count() {
    // The stored triangle count is a real property of the (deterministic)
    // input graph, independent of the trace machinery.
    let fixture = load_fixture();
    let g = generators::erdos_renyi(48, 0.12, 11);
    assert_eq!(
        sisa::graph::properties::triangle_count(&g),
        fixture.expected_triangles
    );
}
