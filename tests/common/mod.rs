//! Helpers shared by the trace-fixture integration tests
//! (`tests/trace_fixture.rs`, `tests/pipeline_replay.rs`): the checked-in
//! fixture's schema and loader live here so the two test binaries cannot
//! drift apart when the fixture is regenerated.
#![allow(dead_code)] // each test binary uses a different subset

use serde::{Deserialize, Serialize};
use sisa::core::TraceSink;
use std::path::PathBuf;

/// The checked-in artefact: the captured trace plus the quantities a replay
/// must reproduce.
#[derive(Debug, Serialize, Deserialize)]
pub struct TraceFixture {
    pub description: String,
    pub graph: String,
    pub expected_triangles: u64,
    pub expected_instructions: u64,
    pub expected_live_sets: u64,
    pub trace: TraceSink,
}

/// Path of the checked-in triangle-count trace capture.
pub fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/triangle_count_trace.json")
}

/// Reads and parses the checked-in fixture (no regeneration — see
/// `tests/trace_fixture.rs` for the `UPDATE_FIXTURES=1` path).
pub fn read_fixture() -> TraceFixture {
    let path = fixture_path();
    let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with UPDATE_FIXTURES=1",
            path.display()
        )
    });
    serde_json::from_str(&json).expect("fixture parses")
}
