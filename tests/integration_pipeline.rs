//! Cross-crate integration tests: the full pipeline from graph generation
//! through the SISA runtime and baselines to scheduling, checked end-to-end.

use sisa::algorithms::baseline::{triangle_count_baseline, BaselineMode};
use sisa::algorithms::setcentric::{
    maximal_cliques, star_pattern, subgraph_isomorphism_count, triangle_count,
};
use sisa::algorithms::SearchLimits;
use sisa::core::{parallel, SetEngine, SetGraph, SetGraphConfig, SisaConfig, SisaRuntime};
use sisa::graph::{datasets, generators, orientation::degeneracy_order, properties};
use sisa::pim::CpuConfig;

#[test]
fn sisa_and_baselines_agree_with_the_reference_triangle_count() {
    let g = generators::planted_cliques(
        &generators::PlantedCliqueConfig {
            num_vertices: 250,
            num_cliques: 15,
            min_clique_size: 4,
            max_clique_size: 8,
            background_edges: 400,
            overlap: 0.2,
        },
        5,
    )
    .0;
    let expected = properties::triangle_count(&g);
    let oriented_csr = degeneracy_order(&g).orient(&g);

    let mut rt = SisaRuntime::new(SisaConfig::default());
    let oriented = SetGraph::load(&mut rt, &oriented_csr, &SetGraphConfig::default());
    let sisa = triangle_count(&mut rt, &oriented, &SearchLimits::unlimited());
    assert_eq!(sisa.result, expected);

    for mode in [BaselineMode::NonSet, BaselineMode::SetBased] {
        let run = triangle_count_baseline(
            &oriented_csr,
            mode,
            &CpuConfig::default(),
            1,
            &SearchLimits::unlimited(),
        );
        assert_eq!(run.result, expected);
    }
}

#[test]
fn maximal_cliques_cover_planted_cliques_on_a_dataset_standin() {
    let g = datasets::by_name("int-antCol5-d1").unwrap().generate(9);
    let ordering = degeneracy_order(&g);
    let mut rt = SisaRuntime::new(SisaConfig::default());
    let sg = SetGraph::load(&mut rt, &g, &SetGraphConfig::default());
    let run = maximal_cliques(&mut rt, &sg, &ordering, &SearchLimits::patterns(500), false);
    assert!(run.result.count > 0);
    assert!(run.result.max_size >= 3);
    // Scheduling the tasks over more threads never increases the makespan.
    let t1 = parallel::schedule(&run.tasks, 1).makespan_cycles;
    let t8 = parallel::schedule(&run.tasks, 8).makespan_cycles;
    assert!(t8 <= t1);
}

#[test]
fn pattern_matching_scales_with_the_pattern_and_respects_labels() {
    let g = generators::erdos_renyi(120, 0.08, 3);
    let mut rt = SisaRuntime::new(SisaConfig::default());
    let sg = SetGraph::load(&mut rt, &g, &SetGraphConfig::default());
    let three =
        subgraph_isomorphism_count(&mut rt, &sg, &star_pattern(3), &SearchLimits::unlimited());
    let four =
        subgraph_isomorphism_count(&mut rt, &sg, &star_pattern(4), &SearchLimits::unlimited());
    // 4-star embeddings are a subset of extensions of 3-star embeddings.
    assert!(four.result <= three.result * 120);
    assert!(three.result > 0);
}

#[test]
fn runtime_statistics_are_consistent_with_the_work_performed() {
    let g = datasets::by_name("econ-beacxc").unwrap().generate(4);
    let oriented_csr = degeneracy_order(&g).orient(&g);
    let mut rt = SisaRuntime::new(SisaConfig::default());
    let oriented = SetGraph::load(&mut rt, &oriented_csr, &SetGraphConfig::default());
    rt.reset_stats();
    let run = triangle_count(&mut rt, &oriented, &SearchLimits::patterns(50_000));
    let stats = rt.stats();
    assert!(stats.total_instructions() > 0);
    assert_eq!(
        stats.total_cycles(),
        run.tasks.iter().map(|t| t.cycles).sum::<u64>()
    );
    assert!(stats.pnm_ops + stats.pum_ops > 0);
    assert!(stats.energy_nj > 0.0);
    assert!(
        stats.smb_hit_ratio() > 0.5,
        "metadata locality should be high"
    );
}
