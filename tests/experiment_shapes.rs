//! Integration test of the experiment harness: the qualitative shapes the
//! paper reports must hold on small instances (the full figures are produced
//! by the sisa-bench binaries).

use sisa::algorithms::baseline::{maximal_cliques_baseline, BaselineMode};
use sisa::algorithms::SearchLimits;
use sisa::core::parallel;
use sisa::graph::{datasets, orientation::degeneracy_order};
use sisa::pim::CpuConfig;
use sisa_bench::{run_cell, Problem, Scheme, Workload};

#[test]
fn figure1_shape_stall_ratio_grows_and_speedup_flattens_on_a_stock_multicore() {
    let g = datasets::by_name("int-antCol5-d1").unwrap().generate(1);
    let ordering = degeneracy_order(&g);
    let cfg = CpuConfig::stock_multicore();
    let run = maximal_cliques_baseline(
        &g,
        &ordering,
        BaselineMode::NonSet,
        &cfg,
        1,
        &SearchLimits::patterns(300),
        false,
    );
    let r1 = parallel::schedule_cpu(&run.tasks, 1, &cfg);
    let r32 = parallel::schedule_cpu(&run.tasks, 32, &cfg);
    assert!(r32.stall_fraction() >= r1.stall_fraction());
    let speedup = r1.makespan_cycles as f64 / r32.makespan_cycles as f64;
    assert!(speedup < 32.0, "speedup must flatten, got {speedup}");
}

#[test]
fn figure6_shape_sisa_outperforms_the_baselines_on_a_dense_mining_graph() {
    let g = datasets::by_name("int-antCol6-d2").unwrap().generate(1);
    let w = Workload::new(g, 32, SearchLimits::patterns(4_000));
    let non_set = run_cell(Problem::Tc, Scheme::NonSet, &w);
    let set_based = run_cell(Problem::Tc, Scheme::SetBased, &w);
    let sisa = run_cell(Problem::Tc, Scheme::Sisa, &w);
    assert_eq!(non_set.result, sisa.result);
    assert_eq!(set_based.result, sisa.result);
    assert!(sisa.cycles < set_based.cycles);
    assert!(sisa.cycles < non_set.cycles);
}

#[test]
fn figure7a_shape_mining_graphs_have_heavier_tails_than_social_graphs() {
    use sisa::graph::degree::DegreeStats;
    let gene = DegreeStats::compute(&datasets::by_name("bio-humanGene").unwrap().generate(2));
    let orkut = DegreeStats::compute(&datasets::by_name("soc-orkut").unwrap().generate(2));
    assert!(gene.max_degree_fraction > orkut.max_degree_fraction * 2.0);
}
