//! # sisa
//!
//! Facade crate for the SISA reproduction (*"SISA: Set-Centric Instruction Set
//! Architecture for Graph Mining on Processing-in-Memory Systems"*, Besta et
//! al., MICRO 2021): re-exports the whole workspace behind one dependency and
//! hosts the runnable examples and cross-crate integration tests.
//!
//! * [`sets`] — set representations and set algorithms.
//! * [`graph`] — CSR graphs, generators, orderings, dataset stand-ins.
//! * [`isa`] — the SISA instruction set and its RISC-V encoding.
//! * [`pim`] — PIM hardware cost models (PUM, PNM, caches, baseline CPU).
//! * [`core`] — the SISA runtime: SCU, set metadata, hybrid set graph,
//!   virtual-thread scheduling.
//! * [`algorithms`] — set-centric mining algorithms, software baselines and
//!   paradigm baselines.
//! * [`service`] — the multi-tenant graph-mining query service over pooled
//!   sharded engines (in-process client + TCP transport).
//!
//! ## Quickstart
//!
//! ```
//! use sisa::core::{SetGraph, SetGraphConfig, SisaConfig, SisaRuntime};
//! use sisa::algorithms::setcentric::triangle_count;
//! use sisa::algorithms::SearchLimits;
//! use sisa::graph::{generators, orientation::degeneracy_order};
//!
//! let g = generators::erdos_renyi(200, 0.05, 7);
//! let oriented = degeneracy_order(&g).orient(&g);
//! let mut rt = SisaRuntime::new(SisaConfig::default());
//! let sg = SetGraph::load(&mut rt, &oriented, &SetGraphConfig::default());
//! let run = triangle_count(&mut rt, &sg, &SearchLimits::unlimited());
//! println!("{} triangles in {} simulated cycles", run.result, run.total_cycles());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sisa_algorithms as algorithms;
pub use sisa_core as core;
pub use sisa_graph as graph;
pub use sisa_isa as isa;
pub use sisa_pim as pim;
pub use sisa_service as service;
pub use sisa_sets as sets;

/// A vertex identifier.
pub type Vertex = sisa_sets::Vertex;
